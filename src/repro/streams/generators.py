"""Synthetic bipartite graph-stream generators.

All accuracy properties of the estimators under study depend on three things
only: the distribution of user cardinalities (heavy tailed in every dataset
of the paper, see its Figure 2), the total number of distinct (user, item)
pairs relative to the memory budget, and the amount of edge duplication.
The generators below give precise control over all three, which is what the
dataset stand-ins of :mod:`repro.streams.datasets` are built from.

Users are integers ``0 .. n_users-1``.  Items are integers drawn from a
per-user item space: item ``j`` of user ``u`` is encoded as
``u * item_stride + j`` so that distinct users never share items unless
``shared_item_space`` is requested (sharing does not change any estimator's
behaviour — all of them hash the *(user, item)* pair or route items through
user-specific hash functions — but the option exists for realism).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from dataclasses import dataclass, field

import numpy as np

UserItemPair = tuple[int, int]

_ITEM_STRIDE = 1 << 26  # large enough that u * stride + j never collides at our scales


def zipf_cardinalities(
    n_users: int,
    alpha: float = 1.3,
    max_cardinality: int = 10_000,
    min_cardinality: int = 1,
    seed: int = 0,
) -> np.ndarray:
    """Draw heavy-tailed per-user target cardinalities.

    Cardinalities follow a discrete truncated power law
    ``P(n) ~ n^-alpha`` on ``[min_cardinality, max_cardinality]``, which
    matches the straight-line CCDFs of the paper's Figure 2.

    Returns an ``int64`` array of length ``n_users``.
    """
    if n_users <= 0:
        raise ValueError("n_users must be positive")
    if max_cardinality < min_cardinality:
        raise ValueError("max_cardinality must be >= min_cardinality")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = np.random.default_rng(seed)
    # Inverse-CDF sampling of a continuous Pareto truncated to the range,
    # then floored to integers; alpha == 1 needs the logarithmic special case.
    u = rng.random(n_users)
    lo = float(min_cardinality)
    hi = float(max_cardinality) + 1.0
    if abs(alpha - 1.0) < 1e-9:
        samples = lo * (hi / lo) ** u
    else:
        exponent = 1.0 - alpha
        samples = (lo**exponent + u * (hi**exponent - lo**exponent)) ** (1.0 / exponent)
    return np.clip(samples.astype(np.int64), min_cardinality, max_cardinality)


def assign_timestamps(
    pairs: Sequence[tuple[object, object]],
    rate: float | None = None,
    start: float = 0.0,
    seed: int = 0,
) -> list[float]:
    """Assign one arrival timestamp per pair.

    With ``rate=None`` (the default) timestamps are the monotonic event index
    offset by ``start`` — the convention every timestamp-less dataset uses, so
    event-count and time-based epoching coincide.  With a positive ``rate``
    the arrivals follow a Poisson process of that many pairs per second
    (i.i.d. exponential gaps), which is the realistic shape for replaying a
    dataset "at R pairs/sec" through the monitoring subsystem.
    """
    count = len(pairs)
    if rate is None:
        return [start + float(index) for index in range(count)]
    if rate <= 0:
        raise ValueError("rate must be positive (or None for event-index timestamps)")
    rng = np.random.default_rng(seed ^ 0x71ED)
    gaps = rng.exponential(scale=1.0 / rate, size=count)
    return (start + np.cumsum(gaps)).tolist()


def _pairs_for_cardinalities(
    cardinalities: Sequence[int],
    duplicate_factor: float,
    seed: int,
    shared_item_space: bool,
) -> list[UserItemPair]:
    """Build a shuffled stream realising the requested per-user cardinalities.

    Every user ``u`` with target cardinality ``c`` contributes exactly ``c``
    distinct pairs; an extra ``duplicate_factor`` fraction of the stream is
    made of re-draws of already-emitted pairs, uniformly at random.
    """
    if duplicate_factor < 0:
        raise ValueError("duplicate_factor must be non-negative")
    rng = np.random.default_rng(seed ^ 0x5EED)
    cards = np.asarray(cardinalities, dtype=np.int64)
    users = np.repeat(np.arange(len(cards), dtype=np.int64), cards)
    if shared_item_space:
        # Items drawn without replacement per user from a common universe.
        item_universe = int(max(1, cards.sum()))
        offsets = np.concatenate(([0], np.cumsum(cards)))
        items = np.empty(int(cards.sum()), dtype=np.int64)
        for index, cardinality in enumerate(cards):
            items[offsets[index] : offsets[index + 1]] = rng.choice(
                item_universe, size=int(cardinality), replace=False
            )
    else:
        # Item j of user u encoded as u * stride + j: distinct by construction.
        items = np.concatenate(
            [np.arange(int(c), dtype=np.int64) for c in cards]
        ) if len(cards) else np.empty(0, dtype=np.int64)
        items = items + users * _ITEM_STRIDE
    distinct = np.stack([users, items], axis=1)
    n_duplicates = int(round(duplicate_factor * len(distinct)))
    if n_duplicates and len(distinct):
        duplicate_rows = distinct[rng.integers(0, len(distinct), size=n_duplicates)]
        stream = np.concatenate([distinct, duplicate_rows], axis=0)
    else:
        stream = distinct
    rng.shuffle(stream)
    return [(int(user), int(item)) for user, item in stream]


def zipf_bipartite_stream(
    n_users: int,
    n_pairs: int | None = None,
    alpha: float = 1.3,
    max_cardinality: int = 10_000,
    duplicate_factor: float = 0.5,
    seed: int = 0,
    shared_item_space: bool = False,
) -> list[UserItemPair]:
    """Generate a shuffled bipartite stream with Zipf-ian user cardinalities.

    Parameters
    ----------
    n_users:
        Number of distinct users.
    n_pairs:
        If given, the per-user cardinalities are rescaled so the number of
        *distinct* pairs is approximately ``n_pairs`` (before duplicates).
    alpha, max_cardinality:
        Power-law shape and truncation of the cardinality distribution.
    duplicate_factor:
        Extra fraction of the stream made of duplicate pairs.
    shared_item_space:
        Draw items from a common universe instead of per-user item spaces.
    """
    cards = zipf_cardinalities(
        n_users, alpha=alpha, max_cardinality=max_cardinality, seed=seed
    )
    if n_pairs is not None:
        total = int(cards.sum())
        if total == 0:
            raise ValueError("generated zero total cardinality; increase n_users")
        scale = n_pairs / total
        cards = np.maximum(1, np.round(cards * scale)).astype(np.int64)
    return _pairs_for_cardinalities(cards, duplicate_factor, seed, shared_item_space)


def uniform_bipartite_stream(
    n_users: int,
    cardinality: int,
    duplicate_factor: float = 0.0,
    seed: int = 0,
) -> list[UserItemPair]:
    """Generate a stream where every user has exactly the same cardinality.

    Used by the statistical tests: with all users identical, the empirical
    RSE at that cardinality can be measured from a single run.
    """
    if cardinality <= 0:
        raise ValueError("cardinality must be positive")
    cards = np.full(n_users, cardinality, dtype=np.int64)
    return _pairs_for_cardinalities(cards, duplicate_factor, seed, shared_item_space=False)


def interleaved_stream(
    early_users: int,
    late_users: int,
    cardinality: int,
    seed: int = 0,
) -> list[UserItemPair]:
    """Generate a stream where one group of users finishes before another starts.

    The FreeBS-vs-FreeRS discussion in Section IV-C of the paper predicts that
    bit sharing favours users whose pairs arrive early (while the array is
    still sparse) and register sharing favours users that arrive late.  This
    generator produces exactly that arrival pattern: all pairs of the
    ``early_users`` group appear before any pair of the ``late_users`` group;
    inside each group the order is shuffled.
    """
    rng = np.random.default_rng(seed)
    early = _pairs_for_cardinalities(
        np.full(early_users, cardinality, dtype=np.int64), 0.0, seed, False
    )
    late_cards = np.full(late_users, cardinality, dtype=np.int64)
    late_raw = _pairs_for_cardinalities(late_cards, 0.0, seed + 1, False)
    # Shift the late group's user ids so the two groups do not overlap.
    late = [(user + early_users, item + early_users * _ITEM_STRIDE) for user, item in late_raw]
    rng.shuffle(early)
    rng.shuffle(late)
    return early + late


@dataclass
class StreamSpec:
    """Declarative description of a synthetic stream (used by the dataset registry)."""

    name: str
    n_users: int
    alpha: float = 1.3
    max_cardinality: int = 10_000
    target_total_cardinality: int | None = None
    duplicate_factor: float = 0.5
    seed: int = 0
    extra: dict[str, object] = field(default_factory=dict)

    def generate(self, seed_offset: int = 0) -> list[UserItemPair]:
        """Materialise the stream described by this spec."""
        return zipf_bipartite_stream(
            n_users=self.n_users,
            n_pairs=self.target_total_cardinality,
            alpha=self.alpha,
            max_cardinality=self.max_cardinality,
            duplicate_factor=self.duplicate_factor,
            seed=self.seed + seed_offset,
        )

    def iter_pairs(self, seed_offset: int = 0) -> Iterator[UserItemPair]:
        """Iterate the generated stream without keeping a reference to it."""
        return iter(self.generate(seed_offset))
