"""Graph-stream substrate: edges, streams, generators and dataset stand-ins.

The paper evaluates on six real-world datasets (two CAIDA traffic traces and
four social graphs).  Those datasets cannot be redistributed, so this package
provides

* a small edge/stream model (:mod:`repro.streams.edge`,
  :mod:`repro.streams.stream`) with text IO (:mod:`repro.streams.io`),
* synthetic bipartite stream generators with heavy-tailed user cardinalities
  and controllable duplicate ratios (:mod:`repro.streams.generators`), and
* a registry of *dataset stand-ins* shaped to the summary statistics of the
  paper's Table I, scaled down so pure-Python experiments finish
  (:mod:`repro.streams.datasets`).
"""

from repro.streams.edge import Edge
from repro.streams.stream import GraphStream, materialize
from repro.streams.io import iter_timed_edge_file, read_edge_file, write_edge_file
from repro.streams.generators import (
    StreamSpec,
    assign_timestamps,
    interleaved_stream,
    uniform_bipartite_stream,
    zipf_bipartite_stream,
    zipf_cardinalities,
)
from repro.streams.datasets import DATASETS, DatasetSpec, dataset_names, load_dataset

__all__ = [
    "Edge",
    "GraphStream",
    "materialize",
    "read_edge_file",
    "write_edge_file",
    "iter_timed_edge_file",
    "StreamSpec",
    "assign_timestamps",
    "zipf_cardinalities",
    "zipf_bipartite_stream",
    "uniform_bipartite_stream",
    "interleaved_stream",
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
]
