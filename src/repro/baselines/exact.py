"""Exact per-user cardinality counting (ground truth).

The exact counter keeps, for every user, the set of distinct items observed
so far.  It is the ground truth for every accuracy experiment and also
provides the exact *total* cardinality ``n(t)`` needed to resolve the
super-spreader threshold ``Delta * n(t)``.

It deliberately implements the same :class:`CardinalityEstimator` interface
as the sketches, so the harness can drive it interchangeably; its
``memory_bits`` reports the (large) true footprint, which is what the paper's
motivation section argues is infeasible at line rate.
"""

from __future__ import annotations

import sys

from repro.core.base import CardinalityEstimator


class ExactCounter(CardinalityEstimator):
    """Exact per-user distinct-item counting with a hash set per user."""

    name = "Exact"

    def __init__(self) -> None:
        self._items: dict[object, set[object]] = {}
        self._total_distinct_pairs = 0
        self._pairs_processed = 0

    def update(self, user: object, item: object) -> float:
        """Record the pair exactly; return the user's exact cardinality."""
        self._pairs_processed += 1
        items = self._items.get(user)
        if items is None:
            items = set()
            self._items[user] = items
        if item not in items:
            items.add(item)
            self._total_distinct_pairs += 1
        return float(len(items))

    def estimate(self, user: object) -> float:
        """Return the exact cardinality of ``user`` (0.0 for unseen users)."""
        items = self._items.get(user)
        return float(len(items)) if items is not None else 0.0

    def estimates(self) -> dict[object, float]:
        """Return the exact cardinality of every observed user."""
        return {user: float(len(items)) for user, items in self._items.items()}

    def cardinality(self, user: object) -> int:
        """Integer-typed exact cardinality of ``user``."""
        items = self._items.get(user)
        return len(items) if items is not None else 0

    def cardinalities(self) -> dict[object, int]:
        """Integer-typed exact cardinality of every observed user."""
        return {user: len(items) for user, items in self._items.items()}

    @property
    def total_cardinality(self) -> int:
        """Sum of all user cardinalities, ``n(t)`` in the paper's notation."""
        return self._total_distinct_pairs

    @property
    def user_count(self) -> int:
        """Number of distinct users observed so far."""
        return len(self._items)

    @property
    def pairs_processed(self) -> int:
        """Total number of pairs observed, duplicates included."""
        return self._pairs_processed

    def max_cardinality(self) -> int:
        """Largest per-user cardinality observed so far."""
        if not self._items:
            return 0
        return max(len(items) for items in self._items.values())

    def memory_bits(self) -> int:
        """Approximate true memory footprint of the stored edge sets, in bits."""
        total = sys.getsizeof(self._items)
        for user, items in self._items.items():
            total += sys.getsizeof(user) + sys.getsizeof(items)
        return total * 8

    def items_of(self, user: object) -> tuple[object, ...]:
        """Return the distinct items of ``user`` (for debugging/tests)."""
        return tuple(self._items.get(user, ()))
