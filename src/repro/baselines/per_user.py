"""Per-user sketch baselines: one private LPC or HLL++ sketch per user.

The paper's LPC and HLL++ baselines give every user its own small sketch,
with the per-user size chosen so that the *total* memory across an expected
user population matches the shared-memory budget ``M`` used by the other
methods (Section V-B: "under the same memory size M, we let LPC have M/|S|
bits and HLL++ have M/(6|S|) 6-bit registers for each user").

Because the user population is not known in advance in a true streaming
setting, the wrapper takes ``expected_users`` explicitly; the experiment
harness passes the dataset's user count, mirroring the paper's setup.
"""

from __future__ import annotations

from collections.abc import Callable


import numpy as np

from repro.core.base import CardinalityEstimator
from repro.engine.base import BatchUpdatable
from repro.engine.encoding import EncodedBatch
from repro.engine.kernels import grouped_indices
from repro.sketches.hllpp import HyperLogLogPlusPlus
from repro.sketches.lpc import LinearProbabilisticCounter


class _PerUserSketchEstimator(BatchUpdatable, CardinalityEstimator):
    """Shared machinery for the per-user sketch baselines.

    ``seed`` must be the hash seed the factory's sketches use for
    ``add(item)``: the batch path pre-hashes items with it, so a mismatch
    would silently break the scalar/batch bit-identity contract.
    """

    def __init__(
        self, sketch_factory: Callable[[], object], sketch_bits: int, seed: int
    ) -> None:
        self._sketch_factory = sketch_factory
        self._sketch_bits = sketch_bits
        self.seed = seed
        self._sketches: dict[object, object] = {}
        self._estimates: dict[object, float] = {}

    def update(self, user: object, item: object) -> float:
        """Insert ``item`` into ``user``'s private sketch; return its estimate."""
        sketch = self._sketches.get(user)
        if sketch is None:
            sketch = self._sketch_factory()
            self._sketches[user] = sketch
        sketch.add(item)
        estimate = float(sketch.estimate())
        self._estimates[user] = estimate
        return estimate

    def update_encoded(self, batch: EncodedBatch) -> None:
        """Vectorised engine path: process a whole encoded batch at once.

        Private sketches only ever see their own user's items, so a user's
        cached estimate after a batch — the estimate at its last arrival —
        equals the estimate after *all* of its batch items.  The batch path
        therefore groups pairs by user, bulk-inserts the pre-hashed items,
        and refreshes each touched user's estimate exactly once instead of
        once per pair (the scalar path's O(sketch) refresh per update is the
        dominant cost).  Results are bit-identical to the scalar loop.
        """
        if len(batch) == 0:
            return
        hashed_items = batch.item_hashes_with_seed(self.seed)
        for code, positions in grouped_indices(batch.user_codes, batch.n_users):
            user = batch.users[code]
            sketch = self._sketches.get(user)
            if sketch is None:
                sketch = self._sketch_factory()
                self._sketches[user] = sketch
            self._add_hashed_batch(sketch, hashed_items[positions])
            self._estimates[user] = float(sketch.estimate())

    def _add_hashed_batch(self, sketch: object, hashed_items: np.ndarray) -> None:
        """Insert pre-hashed items into one private sketch (overridable)."""
        for value in hashed_items.tolist():
            sketch.add_hashed(value)

    def estimate(self, user: object) -> float:
        """Return the latest estimate for ``user`` (0.0 for unseen users)."""
        return self._estimates.get(user, 0.0)

    def estimate_many(self, users):
        """Batch estimates in input order, served from the per-user cache.

        Private sketches refresh their user's cached estimate on every
        insert, so the cache *is* the fresh estimate — one gather suffices.
        """
        from repro.engine.query import gather_cached_estimates

        return gather_cached_estimates(self._estimates, users)

    def estimates(self) -> dict[object, float]:
        """Return the latest estimate of every observed user."""
        return dict(self._estimates)

    def memory_bits(self) -> int:
        """Accounted memory: per-user sketch size times number of users seen."""
        return self._sketch_bits * len(self._sketches)

    @property
    def users_allocated(self) -> int:
        """Number of users that have been allocated a private sketch."""
        return len(self._sketches)


class PerUserLPC(_PerUserSketchEstimator):
    """One private LPC bitmap per user.

    Parameters
    ----------
    memory_bits:
        Global memory budget ``M`` shared (by even division) across users.
    expected_users:
        Expected user population ``|S|``; each user gets ``M / |S|`` bits.
    bits_per_user:
        Alternatively, set the per-user bitmap size directly (overrides the
        budget division when provided).
    """

    name = "LPC"

    def __init__(
        self,
        memory_bits: int,
        expected_users: int,
        bits_per_user: int | None = None,
        seed: int = 0,
    ) -> None:
        if bits_per_user is None:
            if expected_users <= 0:
                raise ValueError("expected_users must be positive")
            bits_per_user = max(8, memory_bits // expected_users)
        self.bits_per_user = bits_per_user
        super().__init__(
            sketch_factory=lambda: LinearProbabilisticCounter(bits_per_user, seed=seed),
            sketch_bits=bits_per_user,
            seed=seed,
        )

    def _add_hashed_batch(self, sketch: object, hashed_items: np.ndarray) -> None:
        """LPC bitmaps support fully vectorised bulk insertion."""
        sketch.add_hashed_many(hashed_items)


class PerUserHLLPP(_PerUserSketchEstimator):
    """One private HLL++ sketch (6-bit registers) per user.

    Parameters
    ----------
    memory_bits:
        Global memory budget ``M`` shared (by even division) across users.
    expected_users:
        Expected user population ``|S|``; each user gets ``M / (6 |S|)``
        six-bit registers.
    registers_per_user:
        Alternatively, set the per-user register count directly.
    """

    name = "HLL++"

    def __init__(
        self,
        memory_bits: int,
        expected_users: int,
        registers_per_user: int | None = None,
        register_width: int = 6,
        seed: int = 0,
    ) -> None:
        if registers_per_user is None:
            if expected_users <= 0:
                raise ValueError("expected_users must be positive")
            registers_per_user = max(4, memory_bits // (register_width * expected_users))
        self.registers_per_user = registers_per_user
        self.register_width = register_width
        super().__init__(
            sketch_factory=lambda: HyperLogLogPlusPlus(
                registers_per_user, width=register_width, seed=seed
            ),
            sketch_bits=registers_per_user * register_width,
            seed=seed,
        )
