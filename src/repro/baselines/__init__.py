"""Baseline estimators the paper compares FreeBS/FreeRS against.

* :class:`~repro.baselines.cse.CSE` — bit-sharing virtual LPC sketches
  (Yoon et al., INFOCOM 2009).
* :class:`~repro.baselines.vhll.VirtualHLL` — register-sharing virtual HLL
  sketches (Xiao et al., SIGMETRICS 2015).
* :class:`~repro.baselines.per_user.PerUserLPC` /
  :class:`~repro.baselines.per_user.PerUserHLLPP` — one private sketch per
  user under a global memory budget (the paper's LPC and HLL++ baselines).
* :class:`~repro.baselines.exact.ExactCounter` — exact per-user cardinalities
  via a hash set of distinct edges (ground truth for every experiment).
"""

from repro.baselines.cse import CSE
from repro.baselines.vhll import VirtualHLL
from repro.baselines.per_user import PerUserHLLPP, PerUserLPC
from repro.baselines.exact import ExactCounter

__all__ = ["CSE", "VirtualHLL", "PerUserLPC", "PerUserHLLPP", "ExactCounter"]
