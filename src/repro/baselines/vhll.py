"""vHLL — virtual HyperLogLog (Xiao, Chen, Chen & Ling, SIGMETRICS 2015).

vHLL compresses one virtual HLL sketch per user into a single shared array of
``M`` registers.  User ``s``'s virtual sketch is the ``m`` registers
``R[f_1(s)], ..., R[f_m(s)]``; an arriving pair (s, d) updates register
``R[f_{h(d)}(s)]`` with the Geometric(1/2) rank of the item, exactly like a
private HLL would.

The estimator removes the contribution of "noisy" registers (registers shared
with other users) by subtracting the global average:

    n_hat_s = M/(M-m) * ( alpha_m m^2 / sum_i 2^-R[f_i(s)]  -  m/M * alpha_M M^2 / sum_j 2^-R[j] )

with the usual small-range switch to linear counting on the virtual sketch
when the raw harmonic estimate is below ``2.5 m``.

Complexity: O(m) per estimate refresh (Challenge 2 of the paper); the
streaming wrapper refreshes only the arriving user's estimate per update,
matching the evaluation protocol of Section V-B.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.base import CardinalityEstimator
from repro.engine.base import BatchUpdatable
from repro.engine.encoding import EncodedBatch
from repro.engine.kernels import (
    last_occurrence,
    register_change_events,
    touched_query_positions,
    value_after_events,
)
from repro.hashing import HashFamily, geometric_rank, hash64, splitmix64, splitmix64_array
from repro.hashing.geometric import geometric_rank_array
from repro.sketches.hll import alpha_m
from repro.sketches.registers import RegisterArray
from repro.state import UserArena


class VirtualHLL(BatchUpdatable, CardinalityEstimator):
    """Register-sharing virtual-HLL estimator: ``M`` shared registers, ``m`` per user."""

    name = "vHLL"

    def __init__(
        self,
        registers: int,
        virtual_size: int = 1024,
        register_width: int = 5,
        seed: int = 0,
    ) -> None:
        if registers <= 0:
            raise ValueError("registers must be positive")
        if virtual_size <= 0:
            raise ValueError("virtual_size must be positive")
        if virtual_size >= registers:
            raise ValueError("virtual_size must be smaller than the number of registers")
        self.M = registers
        self.m = virtual_size
        self.seed = seed
        self._registers = RegisterArray(registers, width=register_width)
        self._family = HashFamily(virtual_size, registers, seed=seed ^ 0x711)
        self._alpha_m = alpha_m(virtual_size)
        self._alpha_M = alpha_m(registers)
        # Columnar per-user state: cached estimates plus the m physical
        # register positions per user (dense rows up to the auto limit,
        # recomputed from the 8-byte key fold beyond it).
        self._arena = UserArena(m=virtual_size, family=self._family, owner=self.name)

    # -- per-user state views (dict-shaped, arena-backed) ----------------------

    @property
    def _estimates(self):
        """Live ``{user: cached estimate}`` view over the arena columns."""
        return self._arena.estimates

    @_estimates.setter
    def _estimates(self, mapping) -> None:
        # Snapshot restore assigns a plain dict; adopt it in mapping order so
        # first-seen order round-trips exactly.
        self._arena.load_estimates(mapping)

    @property
    def _positions_cache(self):
        """Live view of the arena's materialised position rows."""
        return self._arena.positions_cache

    # -- internal helpers -----------------------------------------------------

    def _positions(self, user: object) -> np.ndarray:
        return self._arena.positions_row(self._arena.intern(user))

    def _estimate_from_sketch(self, user: object) -> float:
        """Recompute the vHLL estimate of ``user`` from the shared array (O(m))."""
        positions = self._positions(user)
        values = self._registers.get_many(positions)
        return self._estimate_from_values(
            values, self._registers.harmonic_sum, self._registers.zeros
        )

    def _estimate_from_values(
        self, values: np.ndarray, global_harmonic_sum: float, global_zeros: int
    ) -> float:
        """The vHLL estimation formula from its sufficient statistics.

        ``values`` are the user's ``m`` register values; the global harmonic
        sum / zero count describe the whole shared array at the same instant.
        Shared by the scalar path (current state) and the batch path (state
        reconstructed as of a user's last arrival), so both agree bit-for-bit.
        """
        virtual_harmonic = float(np.sum(np.exp2(-values.astype(np.float64))))
        virtual_zeros = int(np.count_nonzero(values == 0))
        global_term = (self.m / self.M) * self._global_estimate_from(
            global_harmonic_sum, global_zeros
        )
        return self._estimate_from_stats(virtual_harmonic, virtual_zeros, global_term)

    def _estimate_from_stats(
        self, virtual_harmonic: float, virtual_zeros: int, global_term: float
    ) -> float:
        """The closed-form estimate from already-reduced per-user statistics.

        Split out so the vectorised query path (which reduces all users'
        harmonic sums and zero counts in one numpy pass) evaluates exactly
        the same scalar arithmetic as the per-user path.
        """
        raw_local = self._alpha_m * self.m * self.m / virtual_harmonic
        if raw_local < 2.5 * self.m and virtual_zeros > 0:
            raw_local = self.m * math.log(self.m / virtual_zeros)
        scale = self.M / (self.M - self.m)
        return max(0.0, scale * (raw_local - global_term))

    def _global_cardinality_estimate(self) -> float:
        """HLL estimate of the total distinct-pair count over the whole array.

        The noise-correction term of vHLL is ``m/M`` times this quantity.  The
        small-range (linear counting) switch matters here: on a lightly loaded
        array the raw harmonic estimator overestimates by several times, which
        would push every light user's corrected estimate to zero.
        """
        return self._global_estimate_from(
            self._registers.harmonic_sum, self._registers.zeros
        )

    def _global_estimate_from(self, harmonic_sum: float, zeros: int) -> float:
        """The whole-array HLL estimate from its two sufficient statistics."""
        raw_global = self._alpha_M * self.M * self.M / harmonic_sum
        if raw_global < 2.5 * self.M and zeros > 0:
            return self.M * math.log(self.M / zeros)
        return raw_global

    def _intern_batch(self, batch: EncodedBatch) -> np.ndarray:
        """Arena codes of a batch's unique users (interned in batch order)."""
        return self._arena.intern_many(batch.users, batch.user_hashes)

    def _positions_matrix(self, batch: EncodedBatch) -> np.ndarray:
        """Cache-aware ``(n_users, m)`` position matrix of a batch's users."""
        return self._arena.positions_rows(self._intern_batch(batch))

    # -- streaming API --------------------------------------------------------

    def update(self, user: object, item: object) -> float:
        """Process one (user, item) pair; refresh only this user's estimate (O(m))."""
        positions = self._positions(user)
        item_hash = hash64(item, seed=self.seed ^ 0xD2)
        bucket = item_hash % self.m
        # Remix before ranking so the bucket choice does not bias the rank.
        rank = geometric_rank(splitmix64(item_hash), max_rank=self._registers.max_value)
        self._registers.update(int(positions[bucket]), rank)
        estimate = self._estimate_from_sketch(user)
        self._estimates[user] = estimate
        return estimate

    def update_encoded(self, batch: EncodedBatch) -> None:
        """Vectorised engine path: process a whole encoded batch at once.

        Bit-identical to the scalar loop.  As with CSE, a user's cached
        estimate must reflect the shared array **as of that user's last
        arrival**, so the batch path works by time-travel: it detects the
        register-raising events with the shared prefix-maximum kernel,
        replays only those (rare) events through the register array so the
        incrementally-maintained harmonic sum takes exactly the scalar value
        trajectory, and reconstructs each user's ``m`` register values at its
        last arrival from the event list before evaluating the same
        closed-form estimate.
        """
        count = len(batch)
        if count == 0:
            return
        arena_codes = self._intern_batch(batch)
        positions_matrix = self._arena.positions_rows(arena_codes)
        item_hashes = batch.item_hashes_with_seed(self.seed ^ 0xD2)
        buckets = (item_hashes % np.uint64(self.m)).astype(np.int64)
        ranks = geometric_rank_array(
            splitmix64_array(item_hashes), max_rank=self._registers.max_value
        )
        register_indices = positions_matrix[batch.user_codes, buckets]

        # Snapshot everything the reconstruction needs *before* mutating.
        flat_positions = positions_matrix.ravel()
        initial_user_values = self._registers.get_many(flat_positions)
        harmonic_at_start = self._registers.harmonic_sum
        zeros_at_start = self._registers.zeros

        positions, event_registers, _, event_ranks = register_change_events(
            register_indices, ranks, self._registers.get_many(register_indices)
        )

        # Replay the events in arrival order through the shared array.  The
        # bulk update keeps the incremental harmonic-sum bookkeeping on
        # exactly the scalar floating-point trajectory; the per-event
        # snapshots give the global statistics at any arrival position.
        harmonic_after_event, zeros_after_event = self._registers.apply_max_updates(
            event_registers, event_ranks
        )

        # Reconstruct each user's register values at its last arrival.  Only
        # the queried positions whose register actually changed in this batch
        # need the time-travel search; every other position keeps its initial
        # value.
        last_arrival = last_occurrence(batch.user_codes, batch.n_users)
        values_then = initial_user_values.copy()
        touched = touched_query_positions(flat_positions, event_registers, self.M)
        if touched.size:
            event_order = np.lexsort((positions, event_registers))
            values_then[touched] = value_after_events(
                flat_positions[touched],
                last_arrival[touched // self.m],
                event_registers[event_order],
                positions[event_order],
                event_ranks[event_order],
                initial_user_values[touched],
                horizon=count + 1,
            )
        values_then = values_then.reshape(batch.n_users, self.m)

        events_so_far = np.searchsorted(positions, last_arrival, side="right")
        estimates = np.empty(batch.n_users, dtype=np.float64)
        for code in range(batch.n_users):
            seen = int(events_so_far[code])
            if seen == 0:
                harmonic, zeros = harmonic_at_start, zeros_at_start
            else:
                harmonic = float(harmonic_after_event[seen - 1])
                zeros = int(zeros_after_event[seen - 1])
            estimates[code] = self._estimate_from_values(
                np.ascontiguousarray(values_then[code]), harmonic, zeros
            )
        self._arena.set_estimates(arena_codes, estimates)

    def estimate(self, user: object) -> float:
        """Return the latest cached estimate of ``user`` (0.0 for unseen users)."""
        return self._estimates.get(user, 0.0)

    def estimate_many(self, users):
        """Batch cached estimates in input order (the ``estimate`` semantics)."""
        from repro.engine.query import gather_cached_estimates

        return gather_cached_estimates(self._estimates, users)

    def _tracked(self, user: object) -> bool:
        """Whether ``user`` has per-user state in the arena.

        Interned means tracked: every path that touches a user's registers —
        scalar update, batch update, snapshot restore — interns it first.
        """
        return self._arena.contains(user)

    def estimate_fresh(self, user: object) -> float:
        """Recompute the estimate of ``user`` from the shared array right now."""
        if not self._tracked(user):
            return 0.0
        return self._estimate_from_sketch(user)

    def estimate_fresh_many(self, users):
        """Batch :meth:`estimate_fresh` in input order, decoded vectorised.

        One ``(n_users, m)`` register gather plus axis-1 harmonic-sum and
        zero-count reductions replace the per-user O(m) scans; the shared
        global correction term is evaluated once (it is user-independent)
        and the closed-form formula is the scalar :meth:`_estimate_from_stats`,
        so results are bit-identical to per-user :meth:`estimate_fresh`.
        """
        from repro.engine.query import (
            positions_matrix_for_users,
            row_harmonic_sums,
            row_register_values,
            row_zero_counts,
        )

        users = list(users)
        results = [0.0] * len(users)
        tracked = [index for index, user in enumerate(users) if self._tracked(user)]
        if not tracked:
            return results
        matrix = positions_matrix_for_users(
            self._family, self._positions_cache, [users[index] for index in tracked]
        )
        values = row_register_values(self._registers, matrix)
        harmonics = row_harmonic_sums(values)
        zeros = row_zero_counts(values)
        global_term = (self.m / self.M) * self._global_estimate_from(
            self._registers.harmonic_sum, self._registers.zeros
        )
        for index, harmonic, zero_count in zip(
            tracked, harmonics.tolist(), zeros.tolist()
        ):
            results[index] = self._estimate_from_stats(
                harmonic, int(zero_count), global_term
            )
        return results

    def estimates(self) -> dict[object, float]:
        """Return the latest cached estimate of every observed user."""
        return dict(self._estimates)

    def memory_bits(self) -> int:
        """Accounted memory of the shared register array."""
        return self._registers.memory_bits()

    # -- introspection --------------------------------------------------------

    @property
    def fill_harmonic_sum(self) -> float:
        """Harmonic sum of the whole shared array (diagnostic)."""
        return self._registers.harmonic_sum
