"""vHLL — virtual HyperLogLog (Xiao, Chen, Chen & Ling, SIGMETRICS 2015).

vHLL compresses one virtual HLL sketch per user into a single shared array of
``M`` registers.  User ``s``'s virtual sketch is the ``m`` registers
``R[f_1(s)], ..., R[f_m(s)]``; an arriving pair (s, d) updates register
``R[f_{h(d)}(s)]`` with the Geometric(1/2) rank of the item, exactly like a
private HLL would.

The estimator removes the contribution of "noisy" registers (registers shared
with other users) by subtracting the global average:

    n_hat_s = M/(M-m) * ( alpha_m m^2 / sum_i 2^-R[f_i(s)]  -  m/M * alpha_M M^2 / sum_j 2^-R[j] )

with the usual small-range switch to linear counting on the virtual sketch
when the raw harmonic estimate is below ``2.5 m``.

Complexity: O(m) per estimate refresh (Challenge 2 of the paper); the
streaming wrapper refreshes only the arriving user's estimate per update,
matching the evaluation protocol of Section V-B.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.core.base import CardinalityEstimator
from repro.hashing import HashFamily, geometric_rank, hash64, splitmix64
from repro.sketches.hll import alpha_m
from repro.sketches.registers import RegisterArray


class VirtualHLL(CardinalityEstimator):
    """Register-sharing virtual-HLL estimator: ``M`` shared registers, ``m`` per user."""

    name = "vHLL"

    def __init__(
        self,
        registers: int,
        virtual_size: int = 1024,
        register_width: int = 5,
        seed: int = 0,
    ) -> None:
        if registers <= 0:
            raise ValueError("registers must be positive")
        if virtual_size <= 0:
            raise ValueError("virtual_size must be positive")
        if virtual_size >= registers:
            raise ValueError("virtual_size must be smaller than the number of registers")
        self.M = registers
        self.m = virtual_size
        self.seed = seed
        self._registers = RegisterArray(registers, width=register_width)
        self._family = HashFamily(virtual_size, registers, seed=seed ^ 0x711)
        self._alpha_m = alpha_m(virtual_size)
        self._alpha_M = alpha_m(registers)
        self._estimates: Dict[object, float] = {}
        self._positions_cache: Dict[object, np.ndarray] = {}

    # -- internal helpers -----------------------------------------------------

    def _positions(self, user: object) -> np.ndarray:
        positions = self._positions_cache.get(user)
        if positions is None:
            positions = self._family.positions(user)
            self._positions_cache[user] = positions
        return positions

    def _estimate_from_sketch(self, user: object) -> float:
        """Recompute the vHLL estimate of ``user`` from the shared array (O(m))."""
        positions = self._positions(user)
        values = self._registers.get_many(positions)
        virtual_harmonic = float(np.sum(np.exp2(-values.astype(np.float64))))
        raw_local = self._alpha_m * self.m * self.m / virtual_harmonic
        if raw_local < 2.5 * self.m:
            virtual_zeros = int(np.count_nonzero(values == 0))
            if virtual_zeros > 0:
                raw_local = self.m * math.log(self.m / virtual_zeros)
        global_term = (self.m / self.M) * self._global_cardinality_estimate()
        scale = self.M / (self.M - self.m)
        return max(0.0, scale * (raw_local - global_term))

    def _global_cardinality_estimate(self) -> float:
        """HLL estimate of the total distinct-pair count over the whole array.

        The noise-correction term of vHLL is ``m/M`` times this quantity.  The
        small-range (linear counting) switch matters here: on a lightly loaded
        array the raw harmonic estimator overestimates by several times, which
        would push every light user's corrected estimate to zero.
        """
        raw_global = self._alpha_M * self.M * self.M / self._registers.harmonic_sum
        if raw_global < 2.5 * self.M and self._registers.zeros > 0:
            return self.M * math.log(self.M / self._registers.zeros)
        return raw_global

    # -- streaming API --------------------------------------------------------

    def update(self, user: object, item: object) -> float:
        """Process one (user, item) pair; refresh only this user's estimate (O(m))."""
        positions = self._positions(user)
        item_hash = hash64(item, seed=self.seed ^ 0xD2)
        bucket = item_hash % self.m
        # Remix before ranking so the bucket choice does not bias the rank.
        rank = geometric_rank(splitmix64(item_hash), max_rank=self._registers.max_value)
        self._registers.update(int(positions[bucket]), rank)
        estimate = self._estimate_from_sketch(user)
        self._estimates[user] = estimate
        return estimate

    def estimate(self, user: object) -> float:
        """Return the latest cached estimate of ``user`` (0.0 for unseen users)."""
        return self._estimates.get(user, 0.0)

    def estimate_fresh(self, user: object) -> float:
        """Recompute the estimate of ``user`` from the shared array right now."""
        if user not in self._positions_cache:
            return 0.0
        return self._estimate_from_sketch(user)

    def estimates(self) -> Dict[object, float]:
        """Return the latest cached estimate of every observed user."""
        return dict(self._estimates)

    def memory_bits(self) -> int:
        """Accounted memory of the shared register array."""
        return self._registers.memory_bits()

    # -- introspection --------------------------------------------------------

    @property
    def fill_harmonic_sum(self) -> float:
        """Harmonic sum of the whole shared array (diagnostic)."""
        return self._registers.harmonic_sum
