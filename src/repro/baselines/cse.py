"""CSE — Compact Spread Estimator (Yoon, Li, Chen & Peir, INFOCOM 2009).

CSE compresses one virtual LPC sketch per user into a single shared bit array
``A`` of ``M`` bits.  User ``s``'s virtual sketch is the ``m`` bits
``A[f_1(s)], ..., A[f_m(s)]`` selected by ``m`` independent hash functions.
An arriving pair (s, d) sets the ``h(d)``-th bit of the virtual sketch, i.e.
the physical bit ``A[f_{h(d)}(s)]``.

The estimator corrects for "noisy" bits (bits of the virtual sketch set by
*other* users) by subtracting the global fill term:

    n_hat_s = -m ln(U_hat_s / m) + m ln(U / M)

where ``U_hat_s`` is the number of zero bits in the virtual sketch and ``U``
the number of zero bits in the whole array.

Complexity: every estimate refresh costs O(m) because the virtual sketch has
to be scanned; the paper's Challenge 2 is precisely this cost.  Following the
evaluation protocol of the paper (Section V-B), the streaming wrapper only
re-estimates the cardinality of the *arriving* user after each update and
keeps a per-user counter of the latest estimate.

Known limitations faithfully reproduced:

* the estimation range is bounded by ``m ln m`` — CSE reports wildly wrong
  (or saturated) values for heavy users, which is visible in Figure 4/5;
* accuracy depends strongly on the choice of ``m`` (Challenge 1).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.base import CardinalityEstimator
from repro.engine.base import BatchUpdatable
from repro.engine.encoding import EncodedBatch
from repro.engine.kernels import (
    bit_change_events,
    event_time_for_index,
    last_occurrence,
    touched_query_positions,
)
from repro.hashing import HashFamily, hash64
from repro.sketches.bitarray import BitArray
from repro.state import UserArena


class CSE(BatchUpdatable, CardinalityEstimator):
    """Bit-sharing virtual-LPC estimator with ``M`` shared bits, ``m`` per user."""

    name = "CSE"

    def __init__(self, memory_bits: int, virtual_size: int = 1024, seed: int = 0) -> None:
        if memory_bits <= 0:
            raise ValueError("memory_bits must be positive")
        if virtual_size <= 0:
            raise ValueError("virtual_size must be positive")
        if virtual_size > memory_bits:
            raise ValueError("virtual_size cannot exceed memory_bits")
        self.M = memory_bits
        self.m = virtual_size
        self.seed = seed
        self._bits = BitArray(memory_bits)
        self._family = HashFamily(virtual_size, memory_bits, seed=seed ^ 0x5CE)
        # Columnar per-user state: cached estimates plus the m physical bit
        # positions per user (dense rows up to the auto limit, recomputed
        # from the 8-byte key fold beyond it — bit-identical either way).
        self._arena = UserArena(m=virtual_size, family=self._family, owner=self.name)

    # -- per-user state views (dict-shaped, arena-backed) ----------------------

    @property
    def _estimates(self):
        """Live ``{user: cached estimate}`` view over the arena columns."""
        return self._arena.estimates

    @_estimates.setter
    def _estimates(self, mapping) -> None:
        # Snapshot restore assigns a plain dict; adopt it in mapping order so
        # first-seen order round-trips exactly.
        self._arena.load_estimates(mapping)

    @property
    def _positions_cache(self):
        """Live view of the arena's materialised position rows."""
        return self._arena.positions_cache

    # -- internal helpers -----------------------------------------------------

    def _positions(self, user: object) -> np.ndarray:
        return self._arena.positions_row(self._arena.intern(user))

    def _estimate_from_sketch(self, user: object) -> float:
        """Recompute the CSE estimate of ``user`` from the shared array (O(m))."""
        positions = self._positions(user)
        virtual_zeros = int(np.count_nonzero(~self._bits.get_bits(positions)))
        return self._estimate_from_counts(virtual_zeros, self._bits.zero_fraction)

    def _estimate_from_counts(self, virtual_zeros: int, global_zero_fraction: float) -> float:
        """The CSE estimation formula from its two sufficient statistics.

        Shared by the scalar path (current array state) and the batch path
        (counts reconstructed as of a user's last arrival), so the two always
        agree bit-for-bit.
        """
        if virtual_zeros == 0:
            # Virtual sketch saturated: pin at the estimator's maximum range.
            local_term = self.m * math.log(self.m)
        else:
            local_term = -self.m * math.log(virtual_zeros / self.m)
        if global_zero_fraction <= 0.0:
            correction = self.m * math.log(1.0 / self.M)
        else:
            correction = self.m * math.log(global_zero_fraction)
        return max(0.0, local_term + correction)

    def _intern_batch(self, batch: EncodedBatch) -> np.ndarray:
        """Arena codes of a batch's unique users (interned in batch order)."""
        return self._arena.intern_many(batch.users, batch.user_hashes)

    def _positions_matrix(self, batch: EncodedBatch) -> np.ndarray:
        """Cache-aware ``(n_users, m)`` position matrix of a batch's users."""
        return self._arena.positions_rows(self._intern_batch(batch))

    # -- streaming API --------------------------------------------------------

    def update(self, user: object, item: object) -> float:
        """Process one (user, item) pair; refresh only this user's estimate (O(m))."""
        positions = self._positions(user)
        bucket = hash64(item, seed=self.seed ^ 0xD1) % self.m
        self._bits.set_bit(int(positions[bucket]))
        estimate = self._estimate_from_sketch(user)
        self._estimates[user] = estimate
        return estimate

    def update_encoded(self, batch: EncodedBatch) -> None:
        """Vectorised engine path: process a whole encoded batch at once.

        Bit-identical to the scalar loop.  The scalar path refreshes only the
        *arriving* user's estimate after each pair, so after a batch each
        user's cached estimate reflects the shared array **as of that user's
        last arrival** — later pairs of other users are not folded in.  The
        batch path reproduces this exactly by time-travel: it detects the
        batch's bit-flip events, then reconstructs each user's virtual-zero
        count and the global zero count at the user's last arrival position
        from the event list, and evaluates the same closed-form estimate.
        """
        count = len(batch)
        if count == 0:
            return
        arena_codes = self._intern_batch(batch)
        positions_matrix = self._arena.positions_rows(arena_codes)
        buckets = (
            batch.item_hashes_with_seed(self.seed ^ 0xD1) % np.uint64(self.m)
        ).astype(np.int64)
        bit_indices = positions_matrix[batch.user_codes, buckets]

        events = bit_change_events(bit_indices, ~self._bits.get_bits(bit_indices))
        event_bits = bit_indices[events]

        # Per-user reconstruction times: the last arrival of each user.
        last_arrival = last_occurrence(batch.user_codes, batch.n_users)

        # Virtual-zero counts as of each user's last arrival: a queried bit is
        # zero at time t iff it was zero at batch start and its flip event (if
        # any) happens strictly after t.  Only positions whose bit flips in
        # this batch need the flip-time lookup; every other bit keeps its
        # batch-start state.
        flat_positions = positions_matrix.ravel()
        zero_then = ~self._bits.get_bits(flat_positions)
        touched = touched_query_positions(flat_positions, event_bits, self.M)
        if touched.size:
            order = np.argsort(event_bits)
            flip_times = event_time_for_index(
                flat_positions[touched], event_bits[order], events[order], missing=count
            )
            zero_then[touched] &= flip_times > last_arrival[touched // self.m]
        virtual_zeros = zero_then.reshape(batch.n_users, self.m).sum(axis=1)

        # Global zero counts as of each user's last arrival: one flip per
        # event, events ascending in arrival order.
        flips_so_far = np.searchsorted(events, last_arrival, side="right")
        zeros_at_start_global = self._bits.zeros

        # Commit the array state, then publish the time-correct estimates.
        if event_bits.size:
            self._bits.set_many(event_bits)
        values = np.empty(batch.n_users, dtype=np.float64)
        for code in range(batch.n_users):
            global_zero_fraction = (
                zeros_at_start_global - int(flips_so_far[code])
            ) / self.M
            values[code] = self._estimate_from_counts(
                int(virtual_zeros[code]), global_zero_fraction
            )
        self._arena.set_estimates(arena_codes, values)

    def estimate(self, user: object) -> float:
        """Return the latest cached estimate of ``user`` (0.0 for unseen users)."""
        return self._estimates.get(user, 0.0)

    def estimate_many(self, users):
        """Batch cached estimates in input order (the ``estimate`` semantics)."""
        from repro.engine.query import gather_cached_estimates

        return gather_cached_estimates(self._estimates, users)

    def _tracked(self, user: object) -> bool:
        """Whether ``user`` has per-user state in the arena.

        Interned means tracked: every path that touches a user's bits —
        scalar update, batch update, snapshot restore — interns it first,
        so arena membership is exactly the old ``positions cache or
        estimates`` union.
        """
        return self._arena.contains(user)

    def estimate_fresh(self, user: object) -> float:
        """Recompute the estimate of ``user`` from the shared array right now."""
        if not self._tracked(user):
            return 0.0
        return self._estimate_from_sketch(user)

    def estimate_fresh_many(self, users):
        """Batch :meth:`estimate_fresh` in input order, decoded vectorised.

        One ``(n_users, m)`` position gather and one axis-1 zero count
        replace the per-user O(m) scans; the closed-form formula is the same
        scalar :meth:`_estimate_from_counts`, so the results are bit-identical
        to calling :meth:`estimate_fresh` per user.
        """
        from repro.engine.query import positions_matrix_for_users, row_zero_bit_counts

        users = list(users)
        results = [0.0] * len(users)
        tracked = [index for index, user in enumerate(users) if self._tracked(user)]
        if not tracked:
            return results
        matrix = positions_matrix_for_users(
            self._family, self._positions_cache, [users[index] for index in tracked]
        )
        virtual_zeros = row_zero_bit_counts(self._bits, matrix)
        global_zero_fraction = self._bits.zero_fraction
        for index, zeros in zip(tracked, virtual_zeros.tolist()):
            results[index] = self._estimate_from_counts(int(zeros), global_zero_fraction)
        return results

    def estimates(self) -> dict[object, float]:
        """Return the latest cached estimate of every observed user."""
        return dict(self._estimates)

    def memory_bits(self) -> int:
        """Accounted memory of the shared bit array."""
        return self._bits.memory_bits()

    # -- introspection --------------------------------------------------------

    @property
    def max_estimate(self) -> float:
        """Upper end of the usable estimation range, ``m ln m``."""
        return self.m * math.log(self.m)

    @property
    def fill_fraction(self) -> float:
        """Fraction of shared bits already set to one."""
        return 1.0 - self._bits.zero_fraction
