"""Checkpoint and recovery of full monitor state.

A :class:`SnapshotStore` extends the estimator-level serialization of
:mod:`repro.core.serialization` to the composed state of a running
:class:`~repro.monitor.spreader.SpreaderMonitor`: every retained epoch's
estimator (any of the six methods, sharded or not), the window's rotation
bookkeeping, and the detector's hysteresis state.  A replay that is killed
mid-stream restores the latest snapshot and continues exactly where it left
off: the restored monitor produces the same window estimates and the same
alert feed as an uninterrupted run (the test-suite asserts this).

Snapshot format: one JSON document per checkpoint, written atomically
(temp file + rename), named ``snapshot-<pairs_ingested>.json`` so the
resume offset is visible in a directory listing.  The envelope is versioned
independently of the estimator envelopes it embeds; see
``docs/monitoring.md`` for the compatibility rules.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core import serialization
from repro.monitor.config import MonitorSpec
from repro.monitor.spreader import SpreaderMonitor
from repro.monitor.window import Epoch

PathLike = Union[str, Path]

_FORMAT = "freesketch-monitor-snapshot"
_FORMAT_VERSION = 1


def monitor_to_json(monitor: SpreaderMonitor) -> Dict[str, object]:
    """Serialise a monitor (spec + window + detector state) to a JSON dict."""
    spec = getattr(monitor, "spec", None)
    if spec is None:
        raise ValueError(
            "monitor has no spec; build it via MonitorSpec.build() so snapshots "
            "can rebuild it on restore"
        )
    window = monitor.window
    return {
        "format": _FORMAT,
        "version": _FORMAT_VERSION,
        "spec": spec.to_json(),
        "window": {
            "epochs_started": window.epochs_started,
            "pairs_ingested": window.pairs_ingested,
            "last_timestamp": window.last_timestamp,
            "epochs": [
                {
                    **epoch.summary(),
                    "estimator": json.loads(serialization.dumps(epoch.estimator)),
                }
                for epoch in window.epochs
            ],
        },
        "spreader": monitor.state_to_json(),
    }


def monitor_from_json(payload: Dict[str, object]) -> SpreaderMonitor:
    """Rebuild a monitor from :func:`monitor_to_json` output."""
    if payload.get("format") != _FORMAT:
        raise ValueError("not a monitor snapshot payload")
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported monitor snapshot version {payload.get('version')!r}")
    spec = MonitorSpec.from_json(payload["spec"])
    monitor = spec.build()
    window = monitor.window
    state = payload["window"]
    ring = []
    for record in state["epochs"]:
        epoch = Epoch(
            index=int(record["epoch"]),
            estimator=serialization.loads(json.dumps(record["estimator"])),
            start_time=record["start_time"],
            end_time=record["end_time"],
            pairs=int(record["pairs"]),
            closed=bool(record["closed"]),
        )
        ring.append(epoch)
    window._ring.clear()
    window._ring.extend(ring)
    window._epochs_started = int(state["epochs_started"])
    window._pairs_ingested = int(state["pairs_ingested"])
    window._last_timestamp = state["last_timestamp"]
    monitor.state_from_json(payload["spreader"])
    return monitor


class SnapshotStore:
    """Directory of monitor checkpoints with atomic writes and retention.

    Parameters
    ----------
    directory:
        Where snapshots live; created on first save.
    keep:
        How many most-recent snapshots to retain (older ones are deleted on
        save); ``0`` disables pruning.
    """

    def __init__(self, directory: PathLike, keep: int = 3) -> None:
        if keep < 0:
            raise ValueError("keep must be non-negative")
        self.directory = Path(directory)
        self.keep = keep

    def paths(self) -> List[Path]:
        """Existing snapshot files, oldest first (by resume offset)."""
        if not self.directory.is_dir():
            return []
        files = self.directory.glob("snapshot-*.json")
        return sorted(files, key=lambda path: self._offset(path))

    @staticmethod
    def _offset(path: Path) -> int:
        stem = path.stem  # snapshot-<pairs>
        try:
            return int(stem.split("-", 1)[1])
        except (IndexError, ValueError):
            return -1

    def latest(self) -> Optional[Path]:
        """Path of the most recent snapshot, or None when the store is empty."""
        paths = self.paths()
        return paths[-1] if paths else None

    def save(self, monitor: SpreaderMonitor) -> Path:
        """Checkpoint the monitor; return the snapshot path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = monitor_to_json(monitor)
        path = self.directory / f"snapshot-{monitor.window.pairs_ingested:012d}.json"
        temp = path.with_suffix(".json.tmp")
        temp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(temp, path)
        if self.keep:
            for stale in self.paths()[: -self.keep]:
                stale.unlink()
        return path

    def restore(self, path: PathLike | None = None) -> SpreaderMonitor:
        """Rebuild a monitor from a snapshot (default: the latest one)."""
        if path is None:
            path = self.latest()
            if path is None:
                raise FileNotFoundError(f"no snapshots in {self.directory}")
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        return monitor_from_json(payload)
