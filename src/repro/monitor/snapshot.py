"""Checkpoint and recovery of full monitor state.

A :class:`SnapshotStore` extends the estimator-level serialization of
:mod:`repro.core.serialization` to the composed state of a running
:class:`~repro.monitor.spreader.SpreaderMonitor`: every retained epoch's
estimator (any of the six methods, sharded or not), the window's rotation
bookkeeping, and the detector's hysteresis state.  A replay that is killed
mid-stream restores the latest snapshot and continues exactly where it left
off: the restored monitor produces the same window estimates and the same
alert feed as an uninterrupted run (the test-suite asserts this).

Snapshot format: one JSON document per checkpoint, written atomically
(temp file + rename), named ``snapshot-<pairs_ingested>.json`` so the
resume offset is visible in a directory listing.  The envelope is versioned
independently of the estimator envelopes it embeds; see
``docs/monitoring.md`` for the compatibility rules.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro import obs
from repro.core import serialization
from repro.monitor.config import MonitorSpec
from repro.monitor.spreader import SpreaderMonitor
from repro.monitor.window import Epoch

PathLike = str | Path

_log = obs.get_logger("monitor.snapshot")

_FORMAT = "freesketch-monitor-snapshot"
_FORMAT_VERSION = 1


class SnapshotError(RuntimeError):
    """A snapshot file could not be restored.

    Raised with the offending path and the operator's recovery options in
    the message, so ``repro.cli monitor --resume`` (and anything else
    restoring checkpoints) can fail with a actionable one-liner instead of
    an opaque traceback from the JSON layer.
    """

    def __init__(self, path: PathLike | None, reason: str, recovery: str) -> None:
        location = f"snapshot {Path(path)}" if path is not None else "snapshot"
        super().__init__(f"{location}: {reason}.  Recovery options: {recovery}")
        self.path = None if path is None else Path(path)
        self.reason = reason


def monitor_to_json(monitor: SpreaderMonitor) -> dict[str, object]:
    """Serialise a monitor (spec + window + detector state) to a JSON dict."""
    spec = getattr(monitor, "spec", None)
    if spec is None:
        raise ValueError(
            "monitor has no spec; build it via MonitorSpec.build() so snapshots "
            "can rebuild it on restore"
        )
    window = monitor.window
    return {
        "format": _FORMAT,
        "version": _FORMAT_VERSION,
        "spec": spec.to_json(),
        "window": {
            "epochs_started": window.epochs_started,
            "pairs_ingested": window.pairs_ingested,
            "regressions": window.regressions,
            "last_timestamp": window.last_timestamp,
            "epochs": [
                {
                    **epoch.summary(),
                    "estimator": serialization.to_obj(epoch.estimator),
                }
                for epoch in window.epochs
            ],
        },
        "spreader": monitor.state_to_json(),
    }


def monitor_from_json(payload: dict[str, object]) -> SpreaderMonitor:
    """Rebuild a monitor from :func:`monitor_to_json` output."""
    if payload.get("format") != _FORMAT:
        raise ValueError("not a monitor snapshot payload")
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported monitor snapshot version {payload.get('version')!r}")
    spec = MonitorSpec.from_json(payload["spec"])
    monitor = spec.build()
    window = monitor.window
    state = payload["window"]
    ring = []
    for record in state["epochs"]:
        epoch = Epoch(
            index=int(record["epoch"]),
            estimator=serialization.from_obj(record["estimator"]),
            start_time=record["start_time"],
            end_time=record["end_time"],
            pairs=int(record["pairs"]),
            closed=bool(record["closed"]),
        )
        ring.append(epoch)
    window._ring.clear()
    window._ring.extend(ring)
    window._epochs_started = int(state["epochs_started"])
    window._pairs_ingested = int(state["pairs_ingested"])
    # Older snapshots (pre regression-counting) lack the key; start at zero.
    window._regressions = int(state.get("regressions", 0))
    window._last_timestamp = state["last_timestamp"]
    monitor.state_from_json(payload["spreader"])
    return monitor


class SnapshotStore:
    """Directory of monitor checkpoints with atomic writes and retention.

    Parameters
    ----------
    directory:
        Where snapshots live; created on first save.
    keep:
        How many most-recent snapshots to retain (older ones are deleted on
        save); ``0`` disables pruning.
    """

    def __init__(self, directory: PathLike, keep: int = 3) -> None:
        if keep < 0:
            raise ValueError("keep must be non-negative")
        self.directory = Path(directory)
        self.keep = keep

    def paths(self) -> list[Path]:
        """Existing snapshot files, oldest first (by resume offset)."""
        if not self.directory.is_dir():
            return []
        files = self.directory.glob("snapshot-*.json")
        return sorted(files, key=lambda path: self._offset(path))

    @staticmethod
    def _offset(path: Path) -> int:
        stem = path.stem  # snapshot-<pairs>
        try:
            return int(stem.split("-", 1)[1])
        except (IndexError, ValueError):
            return -1

    def latest(self) -> Path | None:
        """Path of the most recent snapshot, or None when the store is empty."""
        paths = self.paths()
        return paths[-1] if paths else None

    def save(self, monitor: SpreaderMonitor) -> Path:
        """Checkpoint the monitor; return the snapshot path."""
        with obs.timed(obs.histogram("monitor.snapshot.save_seconds")):
            self.directory.mkdir(parents=True, exist_ok=True)
            payload = monitor_to_json(monitor)
            path = self.directory / f"snapshot-{monitor.window.pairs_ingested:012d}.json"
            temp = path.with_suffix(".json.tmp")
            temp.write_text(json.dumps(payload), encoding="utf-8")
            os.replace(temp, path)
            if self.keep:
                for stale in self.paths()[: -self.keep]:
                    stale.unlink()
        obs.counter("monitor.snapshot.saves").add()
        _log.info(
            "snapshot_saved",
            path=str(path),
            pairs_ingested=monitor.window.pairs_ingested,
        )
        return path

    def restore(self, path: PathLike | None = None) -> SpreaderMonitor:
        """Rebuild a monitor from a snapshot (default: the latest one).

        Raises :class:`SnapshotError` — naming the path and the recovery
        options — when the file is missing, truncated, or not a monitor
        snapshot.
        """
        if path is None:
            path = self.latest()
            if path is None:
                raise SnapshotError(
                    None,
                    f"no snapshot files found in {self.directory}",
                    "start a fresh run without --resume (snapshots are written "
                    "there once --snapshot-every is set), or point --snapshot-dir "
                    "at the directory that holds them",
                )
        path = Path(path)
        recovery = (
            "delete the file to fall back to the previous retained snapshot, "
            "or start a fresh run without --resume"
        )
        with obs.timed(obs.histogram("monitor.snapshot.load_seconds")):
            try:
                text = path.read_text(encoding="utf-8")
            except OSError as error:
                _log.error("snapshot_restore_failed", path=str(path), error=str(error))
                raise SnapshotError(
                    path, f"cannot read the file ({error})", recovery
                ) from error
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as error:
                _log.error("snapshot_restore_failed", path=str(path), error=str(error))
                raise SnapshotError(
                    path,
                    f"file is truncated or corrupt (JSON parse failed: {error})",
                    recovery,
                ) from error
            try:
                monitor = monitor_from_json(payload)
            except (KeyError, TypeError, ValueError) as error:
                _log.error("snapshot_restore_failed", path=str(path), error=str(error))
                raise SnapshotError(
                    path,
                    f"payload is not a loadable monitor snapshot ({error})",
                    recovery,
                ) from error
        obs.counter("monitor.snapshot.loads").add()
        _log.info("snapshot_restored", path=str(path))
        return monitor
