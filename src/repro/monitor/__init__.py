"""Real-time windowed monitoring subsystem.

The paper's headline use case is detecting super spreaders in *live*
traffic; this package adds the missing notion of time to the repository's
one-shot estimators:

* :mod:`repro.monitor.window` — :class:`WindowedEstimator`, a ring of
  per-epoch sketches rotated on event-count or arrival-clock boundaries,
  answering tumbling and sliding window queries;
* :mod:`repro.monitor.merge` — the sketch-level union merges the sliding
  queries are built from (exact for CSE/vHLL/LPC/HLL++, additive for
  FreeBS/FreeRS);
* :mod:`repro.monitor.spreader` — :class:`SpreaderMonitor`, continuous
  top-k spreader tracking with hysteresis threshold-crossing alerts;
* :mod:`repro.monitor.snapshot` — :class:`SnapshotStore`, checkpoint and
  recovery of the full monitor state (all epochs + detector state);
* :mod:`repro.monitor.replay` — :func:`replay_feed`, rate-controlled replay
  of a dataset producing a JSONL feed of window estimates and alerts;
* :mod:`repro.monitor.config` — :class:`MonitorSpec`, the declarative
  configuration embedded in every snapshot;
* :mod:`repro.monitor.view` — :class:`ReadSnapshot` and
  :class:`SlidingMergeCache`, the versioned read-only exports the
  query-serving layer (:mod:`repro.service`) answers from.

See ``docs/monitoring.md`` for the epoch/window semantics and the snapshot
format, and the CLI's ``monitor`` subcommand for the turnkey entry point.
"""

from repro.monitor.config import MonitorSpec
from repro.monitor.merge import (
    ADDITIVE,
    EXACT,
    fresh_estimates,
    merge_exactness,
    merge_into,
    merged_copy,
    merged_estimates,
    refresh_estimates_from_state,
)
from repro.monitor.replay import replay_feed
from repro.monitor.snapshot import (
    SnapshotError,
    SnapshotStore,
    monitor_from_json,
    monitor_to_json,
)
from repro.monitor.spreader import AlertEvent, SpreaderMonitor
from repro.monitor.topk import TopKTracker
from repro.monitor.view import (
    ReadSnapshot,
    SlidingMergeCache,
    export_read_snapshot,
    normalize_user_key,
    wire_user,
)
from repro.monitor.window import Epoch, WindowedEstimator

__all__ = [
    "ADDITIVE",
    "EXACT",
    "AlertEvent",
    "Epoch",
    "MonitorSpec",
    "ReadSnapshot",
    "SlidingMergeCache",
    "SnapshotError",
    "SnapshotStore",
    "SpreaderMonitor",
    "TopKTracker",
    "WindowedEstimator",
    "wire_user",
    "export_read_snapshot",
    "fresh_estimates",
    "normalize_user_key",
    "merge_exactness",
    "merge_into",
    "merged_copy",
    "merged_estimates",
    "monitor_from_json",
    "monitor_to_json",
    "refresh_estimates_from_state",
    "replay_feed",
]
