"""Incremental top-k scoreboard for the spreader monitor.

The monitor used to rebuild and fully sort the sliding-window estimate dict
after every ingested batch — O(users log users) per batch even when the
batch touched a handful of users.  :class:`TopKTracker` replaces that with:

* a **score table** (:class:`repro.state.ScoreTable`) maintained in
  first-seen order (the canonical tie-break of every ranking this
  repository serves) — numpy score/rank columns behind a dict-shaped
  mapping, with O(1) copy-on-write checkouts for readers;
* a **bounded head**: the exact top-k under the total order
  ``(-score, first_seen_rank)``, rebuilt from a candidate pool of
  ``old head + users whose score changed`` when updates are monotone
  non-decreasing (between window rotations the additive methods' estimates
  only grow, so a user whose score did not change can never displace one
  whose score improved);
* a **full refresh** path (rotations, exact-merge methods) that replaces
  the scores wholesale and re-selects the head with one vectorised
  ``np.lexsort`` partial selection — O(users log users) on the candidate
  columns but with no per-user Python work.

The canonical full ranking is the stable descending sort of the score
table; :meth:`TopKTracker.head` equals its first ``k`` entries bit-for-bit
(``np.lexsort((ranks, -values))`` reproduces stable-sort tie order exactly,
because first-seen ranks are unique and follow insertion order).  The
property suite asserts incremental == full re-sort after arbitrary
ingest/rotation sequences.
"""

from __future__ import annotations

from collections.abc import Mapping


from repro import obs
from repro.state import ScoreTable


class TopKTracker:
    """Exact top-k over a mutating score table, cheap under sparse updates."""

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        #: Current score per user; insertion order is first-seen order.
        self.scores = ScoreTable()
        self._head: list[tuple[object, float]] = []

    # -- queries ---------------------------------------------------------------

    @property
    def head(self) -> list[tuple[object, float]]:
        """The exact top-k ``(user, score)`` list, best first."""
        return list(self._head)

    def total(self) -> float:
        """Sum of all scores in first-seen order (one vector reduction).

        Recomputed on every call (no running float accumulator): an
        incrementally maintained ``+= new - old`` total drifts by ulps,
        which would make a resumed monitor's delta threshold disagree with
        the uninterrupted run's.  The table's ordered reduction is a pure
        function of window state, so resumed and uninterrupted monitors
        compute the identical float.
        """
        return self.scores.total()

    def rank_order(self, users) -> list[object]:
        """Sort ``users`` by first-seen rank — the canonical scan order.

        The full evaluation scans the score table in insertion (first-seen)
        order; incremental evaluations scan their dirty set through this so
        alert emission order — and with it the alert sequence numbers a
        resumed monitor must reproduce — is identical on both paths.
        """
        return sorted(users, key=self.scores.rank_of)

    # -- full refresh ----------------------------------------------------------

    def full_refresh(self, estimates: Mapping[object, float]) -> None:
        """Replace the whole score table (rotation / exact-merge path).

        The score table is updated *in place* so surviving users keep their
        first-seen position: the insertion order — and with it every
        tie-break — stays stable across refreshes.
        """
        scores = self.scores
        if estimates is not scores:
            for user in [user for user in scores if user not in estimates]:
                del scores[user]
            for user, value in estimates.items():
                scores.put(user, value)
        self._rebuild_head()

    def _rebuild_head(self) -> None:
        obs.counter("monitor.topk.rebuilds").add()
        scores = self.scores
        self._head = [
            (scores.key_at(code), scores.value_at(code))
            for code in scores.top_codes(self.k)
        ]

    # -- incremental updates ---------------------------------------------------

    def apply_updates(self, changed: Mapping[object, float]) -> None:
        """Re-score only ``changed`` users; keep the head exact.

        Requires monotone non-decreasing scores (the additive methods'
        between-rotation behaviour).  A decreasing score falls back to a
        full head rebuild, so correctness never depends on the assumption.
        """
        if not changed:
            return
        scores = self.scores
        decreased = False
        for user, value in changed.items():
            old = scores.put(user, value)
            if old is not None and value < old:
                decreased = True
        if decreased or len(self._head) < min(self.k, len(scores)):
            self._rebuild_head()
            return
        rank_of = scores.rank_of
        pool = {user for user, _ in self._head}
        tail_user, tail_score = self._head[-1]
        # The pre-update tail key is a safe (weaker) cutoff: scores only
        # grew, so anything beating the new tail also beats this one.
        cutoff = (-tail_score, rank_of(tail_user))
        dirty = False
        for user in changed:
            if user in pool:
                dirty = True
            elif (-scores[user], rank_of(user)) < cutoff:
                pool.add(user)
                dirty = True
        if dirty:
            obs.counter("monitor.topk.repairs").add()
            self._head = sorted(
                ((user, scores[user]) for user in pool),
                key=lambda item: (-item[1], rank_of(item[0])),
            )[: self.k]

    # -- snapshot plumbing -----------------------------------------------------

    def restore_head(self, head: list[tuple[object, float]]) -> None:
        """Adopt a checkpointed head (scores stay empty until a refresh)."""
        self._head = [(user, float(value)) for user, value in head[: self.k]]
