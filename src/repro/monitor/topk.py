"""Incremental top-k scoreboard for the spreader monitor.

The monitor used to rebuild and fully sort the sliding-window estimate dict
after every ingested batch — O(users log users) per batch even when the
batch touched a handful of users.  :class:`TopKTracker` replaces that with:

* a **scores dict** maintained in first-seen order (the canonical tie-break
  of every ranking this repository serves);
* a **bounded head**: the exact top-k under the total order
  ``(-score, first_seen_rank)``, rebuilt from a candidate pool of
  ``old head + users whose score changed`` when updates are monotone
  non-decreasing (between window rotations the additive methods' estimates
  only grow, so a user whose score did not change can never displace one
  whose score improved);
* a **full refresh** path (rotations, exact-merge methods) that replaces
  the scores wholesale and re-selects the head with one
  ``heapq.nsmallest`` pass — O(users log k), not a full sort.

The canonical full ranking is the stable descending sort of the scores
dict; :meth:`TopKTracker.head` equals its first ``k`` entries bit-for-bit
(``heapq.nsmallest`` with the ``(-score, rank)`` key reproduces stable-sort
tie order exactly, because first-seen ranks follow dict insertion order).
The property suite asserts incremental == full re-sort after arbitrary
ingest/rotation sequences.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Tuple

from repro import obs


class TopKTracker:
    """Exact top-k over a mutating score table, cheap under sparse updates."""

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        #: Current score per user; insertion order is first-seen order.
        self.scores: Dict[object, float] = {}
        self._ranks: Dict[object, int] = {}
        self._next_rank = 0
        self._head: List[Tuple[object, float]] = []

    # -- queries ---------------------------------------------------------------

    @property
    def head(self) -> List[Tuple[object, float]]:
        """The exact top-k ``(user, score)`` list, best first."""
        return list(self._head)

    def total(self) -> float:
        """``float(sum(scores.values()))``, summed in first-seen order.

        Recomputed on every call (no running float accumulator): an
        incrementally maintained ``+= new - old`` total drifts by ulps from
        the left-fold sum, which would make a resumed monitor's delta
        threshold disagree with the uninterrupted run's.  The scores dict
        is maintained in first-seen order, which equals the merged estimate
        dict's order, so this value is a pure function of window state.
        """
        return float(sum(self.scores.values()))

    def rank_order(self, users) -> List[object]:
        """Sort ``users`` by first-seen rank — the canonical scan order.

        The full evaluation scans the score table in dict (first-seen)
        order; incremental evaluations scan their dirty set through this so
        alert emission order — and with it the alert sequence numbers a
        resumed monitor must reproduce — is identical on both paths.
        """
        ranks = self._ranks
        return sorted(users, key=ranks.__getitem__)

    # -- full refresh ----------------------------------------------------------

    def full_refresh(self, estimates: Mapping[object, float]) -> None:
        """Replace the whole score table (rotation / exact-merge path).

        The scores dict is updated *in place* so surviving users keep their
        first-seen position: the dict order — and with it every tie-break —
        stays stable across refreshes.
        """
        scores = self.scores
        ranks = self._ranks
        if estimates is not scores:
            for user in [user for user in scores if user not in estimates]:
                del scores[user]
                del ranks[user]
            for user, value in estimates.items():
                if user not in ranks:
                    ranks[user] = self._next_rank
                    self._next_rank += 1
                scores[user] = value
        self._rebuild_head()

    def _rebuild_head(self) -> None:
        obs.counter("monitor.topk.rebuilds").add()
        ranks = self._ranks
        self._head = heapq.nsmallest(
            self.k, self.scores.items(), key=lambda item: (-item[1], ranks[item[0]])
        )

    # -- incremental updates ---------------------------------------------------

    def apply_updates(self, changed: Mapping[object, float]) -> None:
        """Re-score only ``changed`` users; keep the head exact.

        Requires monotone non-decreasing scores (the additive methods'
        between-rotation behaviour).  A decreasing score falls back to a
        full head rebuild, so correctness never depends on the assumption.
        """
        if not changed:
            return
        scores = self.scores
        ranks = self._ranks
        decreased = False
        for user, value in changed.items():
            old = scores.get(user)
            if old is None:
                ranks[user] = self._next_rank
                self._next_rank += 1
            elif value < old:
                decreased = True
            scores[user] = value
        if decreased or len(self._head) < min(self.k, len(scores)):
            self._rebuild_head()
            return
        pool = {user for user, _ in self._head}
        tail_user, tail_score = self._head[-1]
        # The pre-update tail key is a safe (weaker) cutoff: scores only
        # grew, so anything beating the new tail also beats this one.
        cutoff = (-tail_score, ranks[tail_user])
        dirty = False
        for user in changed:
            if user in pool:
                dirty = True
            elif (-scores[user], ranks[user]) < cutoff:
                pool.add(user)
                dirty = True
        if dirty:
            obs.counter("monitor.topk.repairs").add()
            self._head = sorted(
                ((user, scores[user]) for user in pool),
                key=lambda item: (-item[1], ranks[item[0]]),
            )[: self.k]

    # -- snapshot plumbing -----------------------------------------------------

    def restore_head(self, head: List[Tuple[object, float]]) -> None:
        """Adopt a checkpointed head (scores stay empty until a refresh)."""
        self._head = [(user, float(value)) for user, value in head[: self.k]]
