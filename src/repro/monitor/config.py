"""Declarative monitor configuration.

A :class:`MonitorSpec` pins down everything needed to (re)build a
:class:`~repro.monitor.spreader.SpreaderMonitor`: the estimation method and
its dimensioning (reusing the central method registry so the monitor and the
experiments agree on the equal-memory protocol), the epoching mode, the
window size, and the alerting thresholds.  Because it is a plain dataclass
with a JSON round-trip, the snapshot store embeds it in every checkpoint and
can rebuild an identical monitor on restore without any caller-supplied
factories.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.core.base import CardinalityEstimator
from repro.experiments.config import ExperimentConfig
from repro.registry import METHOD_ORDER, build


@dataclass(frozen=True)
class MonitorSpec:
    """Everything needed to build (or rebuild) a spreader monitor."""

    #: Estimation method (one of :data:`repro.experiments.estimators.METHOD_ORDER`).
    method: str = "FreeRS"
    #: Shared memory budget in bits (split across shards when ``shards > 1``).
    memory_bits: int = 1 << 18
    #: Virtual sketch size for CSE / vHLL.
    virtual_size: int = 128
    #: Register width in bits for the register-sharing methods.
    register_width: int = 5
    #: Master seed; every epoch derives the same hash seeds from it, which is
    #: what makes the sliding-window merges legal.
    seed: int = 7
    #: Expected user population (dimensioning of the per-user baselines).
    expected_users: int = 1000
    #: User-partitioned shards per epoch (1 = unsharded).
    shards: int = 1
    #: Event-count epoch boundary (mutually exclusive with ``epoch_span``).
    epoch_pairs: int | None = 4096
    #: Arrival-clock epoch boundary in clock units.
    epoch_span: float | None = None
    #: Ring capacity: epochs retained for sliding queries.
    window_epochs: int = 8
    #: Size of the continuous top-k spreader set.
    top_k: int = 10
    #: Relative enter threshold (``delta * window total``); mutually
    #: exclusive with ``threshold``.
    delta: float | None = 5e-3
    #: Absolute enter threshold on the windowed estimate.
    threshold: float | None = None
    #: Hysteresis fraction between enter and exit thresholds.
    hysteresis: float = 0.2
    #: Raise on regressed (non-monotonic) arrival timestamps instead of
    #: clamping them to the live epoch (see ``WindowedEstimator``).
    strict_timestamps: bool = False

    def __post_init__(self) -> None:
        if self.method not in METHOD_ORDER:
            raise ValueError(f"unknown method {self.method!r}; known: {METHOD_ORDER}")

    # -- factories -------------------------------------------------------------

    def estimator_factory(self):
        """Per-epoch estimator factory (same configuration for every epoch)."""
        config = ExperimentConfig(
            memory_bits=self.memory_bits,
            virtual_size=self.virtual_size,
            register_width=self.register_width,
            seed=self.seed,
        )

        def factory(_epoch_index: int) -> CardinalityEstimator:
            return build(
                self.method,
                config,
                expected_users=self.expected_users,
                shards=self.shards,
            )

        return factory

    def build(self):
        """Build a fresh :class:`~repro.monitor.spreader.SpreaderMonitor`."""
        from repro.monitor.spreader import SpreaderMonitor
        from repro.monitor.window import WindowedEstimator

        window = WindowedEstimator(
            self.estimator_factory(),
            epoch_pairs=self.epoch_pairs,
            epoch_span=self.epoch_span,
            window_epochs=self.window_epochs,
            strict_timestamps=self.strict_timestamps,
        )
        monitor = SpreaderMonitor(
            window,
            top_k=self.top_k,
            threshold=self.threshold,
            delta=self.delta,
            hysteresis=self.hysteresis,
        )
        monitor.spec = self
        return monitor

    # -- JSON round-trip -------------------------------------------------------

    def to_json(self) -> dict[str, object]:
        """JSON-ready dict (embedded in every snapshot)."""
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict[str, object]) -> MonitorSpec:
        """Rebuild a spec from :meth:`to_json` output."""
        return cls(**payload)
