"""Versioned read-only views of a live monitor: the query-serving seam.

The service layer (:mod:`repro.service`) answers thousands of concurrent
readers while ingest keeps mutating the monitor.  Two pieces make that safe
and cheap:

* :class:`ReadSnapshot` — an immutable export of everything the hot query
  ops (``spread`` / ``batch_spread`` / ``topk`` / ``stats``) need, stamped
  with the monitor's :attr:`~repro.monitor.spreader.SpreaderMonitor.version`.
  Building one costs a dict copy plus one ranking sort; it reuses the
  sliding-window merge the monitor's own evaluation already cached, so the
  export adds no sketch work.  Readers hold a reference and never touch the
  live monitor — ingest proceeds regardless of reader count.
* :class:`SlidingMergeCache` — sketch-level merges for the cold
  ``sliding(k_epochs)`` op, cached by the *closed-epoch prefix* of the
  window slice.  Closed epochs are immutable, so a prefix merge stays valid
  until rotation evicts one of its epochs from the ring
  (:meth:`SlidingMergeCache.invalidate` drops it then); only the live
  epoch's state is merged per query.  The cached path is bit-identical to
  :meth:`~repro.monitor.window.WindowedEstimator.window_estimates` because
  it replays the exact same left-fold merge order.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import copy
import operator
from dataclasses import dataclass

from repro.monitor.merge import (
    fresh_estimates,
    merge_into,
    merged_copy,
    refresh_estimates_from_state,
)
from repro.monitor.window import WindowedEstimator


def wire_user(user: object) -> object:
    """Coerce a user key to its JSON-safe wire form.

    Ints and strings pass through; everything else (tuples, bytes, ...) is
    stringified.  This is the *one* coercion every serialised surface uses —
    ``topk`` / ``sliding`` responses, alert feeds — and
    :meth:`ReadSnapshot.spread` resolves the same form back to the original
    key, so a key read from any response can be fed into any query op.
    """
    return user if isinstance(user, (int, str)) else str(user)


def normalize_user_key(estimates: Mapping[object, float], user: object) -> object:
    """Map a wire-format user id onto the estimate table's key.

    JSON carries user ids as strings or ints; streams may use either.  A
    direct hit wins; otherwise a digit string falls back to its int form
    (and an int to its string form), so a client querying ``"42"`` finds
    the user ingested as ``42``.
    """
    if user in estimates:
        return user
    if isinstance(user, str):
        try:
            as_int = int(user)
        except ValueError:  # not an integer-shaped string: no fallback
            return user
        if as_int in estimates:
            return as_int
    elif isinstance(user, int) and str(user) in estimates:
        return str(user)
    return user


@dataclass(frozen=True)
class ReadSnapshot:
    """Immutable, versioned export of a monitor's queryable state."""

    #: Monotonically increasing state version (bumped per evaluation).
    version: int
    #: Method name from the monitor's spec (None for spec-less monitors).
    method: str | None
    pairs_ingested: int
    epochs_started: int
    #: Index of the live epoch at export time.
    live_epoch: int
    last_timestamp: float | None
    window_epochs: int
    #: Merge guarantee of the sliding estimates ("exact" or "additive").
    exactness: str
    #: Clamped timestamp regressions observed so far.
    regressions: int
    enter_threshold: float
    active_spreaders: tuple[object, ...]
    #: Metadata of every retained epoch, oldest first.
    epoch_summaries: tuple[dict[str, object], ...]
    #: Full sliding-window per-user estimates, in first-seen key order (the
    #: canonical tie-break of every ranking).
    estimates: Mapping[object, float]
    #: Head of the ranking, precomputed by the monitor's continuous top-k
    #: tracker (up to the monitor's ``top_k`` entries).
    top: tuple[tuple[object, float], ...] = ()

    # -- lazy derived structures ----------------------------------------------
    # The snapshot is frozen; caches are attached via object.__setattr__ so
    # exporting one (done at every ingest batch boundary) costs two dict
    # copies, not a full sort or index build.

    @property
    def ranked(self) -> tuple[tuple[object, float], ...]:
        """``estimates`` ranked descending, ties in first-seen order.

        Built on first use: the hot refresh path never ranks more than the
        tracker's head, and most snapshots are never asked for a deep
        ``topk``.
        """
        cached = self.__dict__.get("_ranked")
        if cached is None:
            cached = tuple(
                sorted(self.estimates.items(), key=lambda item: item[1], reverse=True)
            )
            object.__setattr__(self, "_ranked", cached)
        return cached

    def _wire_aliases(self) -> dict[str, object]:
        """Map ``wire_user`` forms back to the original non-JSON-safe keys."""
        cached = self.__dict__.get("_aliases")
        if cached is None:
            cached = {}
            for user in self.estimates:
                if not isinstance(user, (int, str)):
                    cached.setdefault(str(user), user)
            object.__setattr__(self, "_aliases", cached)
        return cached

    # -- query ops -------------------------------------------------------------

    def spread(self, user: object) -> float:
        """One user's sliding-window estimate (0.0 for unseen users)."""
        estimates = self.estimates
        key = normalize_user_key(estimates, user)
        value = estimates.get(key)
        if value is None and isinstance(user, str):
            # Symmetric wire coercion: a key that was stringified on the way
            # out (tuple/bytes users) resolves back to the original.
            alias = self._wire_aliases().get(user)
            if alias is not None:
                value = estimates.get(alias)
        return float(value) if value is not None else 0.0

    def batch_spread(self, users: Sequence[object]) -> list[float]:
        """Estimates for many users, in input order.

        All-hit batches — the service hot path — resolve against the frozen
        score columns with one vectorised gather
        (:meth:`repro.state.FrozenScores.gather_exact`) when the snapshot
        carries a columnar checkout, or with a single C-level ``itemgetter``
        call over a plain dict table (one dict probe per user, no
        Python-level loop).  Any miss falls back to the per-user
        :meth:`spread` loop with its normalization semantics (int/str
        duality, wire aliases), so results are identical on every path.
        """
        users = list(users)
        if len(users) > 1:
            gather = getattr(self.estimates, "gather_exact", None)
            if gather is not None:
                values = gather(users)
                if values is not None:
                    return values
            else:
                try:
                    return list(operator.itemgetter(*users)(self.estimates))
                except (KeyError, TypeError):
                    pass
        return [self.spread(user) for user in users]

    def topk(self, k: int) -> list[tuple[object, float]]:
        """The top-``k`` (user, estimate) ranking of the sliding window."""
        if k <= 0:
            raise ValueError("k must be positive")
        if k <= len(self.top) or len(self.top) >= len(self.estimates):
            return [(user, float(value)) for user, value in self.top[:k]]
        return [(user, float(value)) for user, value in self.ranked[:k]]

    def total_estimate(self) -> float:
        """Sum of the sliding-window estimates (the paper's ``n(t)``)."""
        return float(sum(self.estimates.values()))

    def stats(self) -> dict[str, object]:
        """JSON-ready summary of the snapshot (the ``stats`` op's core)."""
        return {
            "version": self.version,
            "method": self.method,
            "pairs_ingested": self.pairs_ingested,
            "epochs_started": self.epochs_started,
            "live_epoch": self.live_epoch,
            "last_timestamp": self.last_timestamp,
            "window_epochs": self.window_epochs,
            "exactness": self.exactness,
            "regressions": self.regressions,
            "users_tracked": len(self.estimates),
            "total_estimate": self.total_estimate(),
            "enter_threshold": self.enter_threshold,
            "active_spreaders": len(self.active_spreaders),
            "epochs": list(self.epoch_summaries),
        }


def export_read_snapshot(monitor) -> ReadSnapshot:
    """Build a :class:`ReadSnapshot` from a monitor's current state.

    Must run while the monitor is quiescent (between batches — the service
    layer holds the ingest lock).  Reuses the sliding merge of the last
    evaluation and the continuous top-k tracker's head, so the cost is one
    dict copy — no sorting; the full ranking is materialised lazily only if
    a deep ``topk`` asks for it.
    """
    # A copy-on-write checkout (or a per-call dict copy for non-columnar
    # monitors) — immutable from the snapshot's point of view either way.
    estimates = monitor.last_window_estimates()
    window = monitor.window
    spec = getattr(monitor, "spec", None)
    return ReadSnapshot(
        version=monitor.version,
        method=None if spec is None else spec.method,
        pairs_ingested=window.pairs_ingested,
        epochs_started=window.epochs_started,
        live_epoch=window.live_epoch.index,
        last_timestamp=window.last_timestamp,
        window_epochs=window.window_epochs,
        exactness=window.window_exactness(),
        regressions=window.regressions,
        enter_threshold=monitor.last_enter_threshold,
        active_spreaders=tuple(monitor.active_spreaders),
        epoch_summaries=tuple(epoch.summary() for epoch in window.epochs),
        estimates=estimates,
        top=tuple((user, float(value)) for user, value in monitor.current_top),
    )


class SlidingMergeCache:
    """Closed-epoch prefix merges for ``sliding(k_epochs)`` queries.

    A ``k``-epoch sliding query merges the last ``k`` retained epochs.  All
    but the last of those are closed (immutable), so their union is cached
    keyed by the tuple of epoch indices; per query only the live epoch is
    merged on top.  The merge order — left fold over the slice, one
    estimate refresh at the end — replays
    :func:`repro.monitor.merge.merged_copy` exactly, which keeps the cached
    path bit-identical for the additive methods too (float addition order
    is preserved).
    """

    def __init__(self, max_entries: int = 16) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self._max_entries = max_entries
        self._prefixes: dict[tuple[int, ...], object] = {}

    def invalidate(self, window: WindowedEstimator) -> None:
        """Drop prefixes referencing epochs no longer retained by the ring."""
        retained = {epoch.index for epoch in window.epochs}
        stale = [key for key in self._prefixes if not set(key) <= retained]
        for key in stale:
            del self._prefixes[key]

    def sliding_estimates(self, window: WindowedEstimator, last: int | None = None):
        """``window.window_estimates(last)`` with the closed prefix cached.

        Must run under the ingest lock (reads live epoch state).
        """
        epochs = window.epochs
        if last is None:
            last = window.window_epochs
        if last <= 0:
            raise ValueError("last must be positive")
        slice_ = epochs[-last:]
        if len(slice_) == 1:
            return fresh_estimates(slice_[0].estimator)
        self.invalidate(window)
        prefix, tail = slice_[:-1], slice_[-1]
        key = tuple(epoch.index for epoch in prefix)
        merged_prefix = self._prefixes.get(key)
        if merged_prefix is None:
            # Deferred refresh: the cached prefix carries raw merged state;
            # estimates are refreshed once per query, after the tail merge,
            # exactly as merged_copy does over the full slice.
            merged_prefix = merged_copy([epoch.estimator for epoch in prefix])
            if len(self._prefixes) >= self._max_entries:
                self._prefixes.clear()
            self._prefixes[key] = merged_prefix
        combined = copy.deepcopy(merged_prefix)
        merge_into(combined, tail.estimator, refresh_estimates=False)
        refresh_estimates_from_state(combined)
        return combined.estimates()
