"""Sketch-level union merges across estimators of the same configuration.

The engine's :meth:`~repro.engine.ShardedEstimator.merge` combines *disjoint
shard sets* — the multi-worker contract, where every shard saw the same
sub-stream either way.  The monitoring subsystem needs the other merge: the
same configuration fed *different slices of time* (one estimator per epoch),
combined into one view of the union of the slices.  That is a union at the
sketch-state level: OR for bit arrays, element-wise max for register arrays.

Exactness contract (documented in docs/monitoring.md and asserted by the
test-suite):

* **CSE, vHLL, LPC, HLL++** are *mergeable*: their sketch state is an
  order-independent union (bits / register maxima), and their estimates are
  pure functions of that state.  Merging the per-epoch states and
  re-evaluating yields exactly the estimate a single estimator fed the
  concatenated epochs would report when asked to re-estimate from its final
  state (``estimate_fresh`` for the shared-sketch methods; the per-user
  baselines' cached estimates already equal the fresh ones).
* **FreeBS and FreeRS** are *not* mergeable in that sense: their per-user
  estimates are Horvitz–Thompson sums whose increments depend on the shared
  array's fill trajectory, which differs between one long run and several
  fresh epochs.  The merged estimate is defined as the **sum of the
  per-epoch estimates** — each epoch's estimate is an unbiased estimate of
  the epoch's distinct pairs, so the sum unbiasedly estimates the window
  total *plus* the cross-epoch duplicates (pairs re-appearing in a later
  epoch are counted again).  The sketch state still merges as a union so the
  combined estimator remains usable.
* **Sharded** estimators merge shard-by-shard and inherit the weaker of
  their shards' guarantees.

All merges require identical dimensioning and seeds on both sides — the
:class:`~repro.monitor.window.WindowedEstimator` guarantees this by building
every epoch from the same factory.
"""

from __future__ import annotations

from collections.abc import Sequence

import copy

import numpy as np

from repro.baselines.cse import CSE
from repro.baselines.per_user import PerUserHLLPP, PerUserLPC
from repro.baselines.vhll import VirtualHLL
from repro.core.batch import FreeBSBatch, FreeRSBatch
from repro.core.freebs import FreeBS
from repro.core.freers import FreeRS
from repro.engine.sharded import ShardedEstimator

#: Merge semantics per estimator class: ``exact`` means the merged estimate
#: equals a single run's fresh re-estimate over the union stream;
#: ``additive`` means the merged estimate is the sum of per-part estimates.
EXACT = "exact"
ADDITIVE = "additive"


def merge_exactness(estimator: object) -> str:
    """Return the merge guarantee (:data:`EXACT` or :data:`ADDITIVE`) of an estimator."""
    if isinstance(estimator, ShardedEstimator):
        guarantees = {merge_exactness(shard) for shard in estimator.shards}
        return ADDITIVE if ADDITIVE in guarantees else EXACT
    if isinstance(estimator, (CSE, VirtualHLL, PerUserLPC, PerUserHLLPP)):
        return EXACT
    if isinstance(estimator, (FreeBS, FreeRS, FreeBSBatch, FreeRSBatch)):
        return ADDITIVE
    raise TypeError(f"no monitor merge support for {type(estimator).__name__}")


def _require(condition: bool, what: str) -> None:
    if not condition:
        raise ValueError(f"cannot merge: {what} must match on both sides")


def _merge_bitarray(target_bits, source_bits) -> None:
    target_bits.union_update(source_bits)


def _merge_registers(target_registers, source_registers) -> None:
    target_registers.merge_max(source_registers)


def _sum_estimates(target, source) -> None:
    for user, value in source._estimates.items():
        target._estimates[user] = target._estimates.get(user, 0.0) + value


def tracked_users(estimator) -> list:
    """Every user the estimator carries per-user state for, in stable order.

    Arena-backed estimators (CSE/vHLL) answer straight from the interner:
    every user with any per-user state is interned, and intern order is
    first-seen order.  For the dict-backed methods the authoritative user
    set is the union of the estimate cache and the positions cache: a
    snapshot-restored estimator has users only in ``_estimates`` (the
    positions cache rebuilds lazily), while a user whose estimate was never
    published would appear only in ``_positions_cache``.  Enumerating just
    one of the two — the bug this helper replaces — dropped users from
    sliding estimates.
    """
    arena = getattr(estimator, "_arena", None)
    if arena is not None:
        return arena.users()
    users = list(estimator._estimates)
    cache = getattr(estimator, "_positions_cache", None)
    if cache:
        seen = estimator._estimates
        users.extend(user for user in cache if user not in seen)
    return users


def merge_into(target, source, refresh_estimates: bool = True):
    """Union-merge ``source``'s sketch state and estimates into ``target``.

    ``target`` is mutated and returned; ``source`` is left untouched.  Both
    must be the same class with identical dimensioning and seeds (the
    windowed estimator's per-epoch factories guarantee this).

    ``refresh_estimates=False`` defers the re-evaluation of the exact
    methods' estimates (a per-user O(m) pass) — callers chaining several
    merges do one :func:`refresh_estimates` pass at the end instead of one
    per merge.  The additive methods' estimate sums always accumulate.
    """
    if type(target) is not type(source):
        raise TypeError(
            f"cannot merge {type(source).__name__} into {type(target).__name__}"
        )
    if isinstance(target, ShardedEstimator):
        _require(
            (target.num_shards, target.seed) == (source.num_shards, source.seed),
            "shard count and routing seed",
        )
        for shard_target, shard_source in zip(target._shards, source._shards):
            merge_into(shard_target, shard_source, refresh_estimates=refresh_estimates)
        target._shard_pairs = [
            ours + theirs
            for ours, theirs in zip(target._shard_pairs, source._shard_pairs)
        ]
        return target
    if isinstance(target, FreeBS):
        _require((target.M, target.seed) == (source.M, source.seed), "memory and seed")
        _merge_bitarray(target._bits, source._bits)
        _sum_estimates(target, source)
        target._pairs_processed += source._pairs_processed
        target._pairs_sampled += source._pairs_sampled
        return target
    if isinstance(target, FreeBSBatch):
        _require((target.M, target.seed) == (source.M, source.seed), "memory and seed")
        np.logical_or(target._bit_state, source._bit_state, out=target._bit_state)
        target._zero_bits = int(np.count_nonzero(~target._bit_state))
        _sum_estimates(target, source)
        target._pairs_processed += source._pairs_processed
        return target
    if isinstance(target, FreeRS):
        _require(
            (target.M, target._registers.width, target.seed)
            == (source.M, source._registers.width, source.seed),
            "registers, width and seed",
        )
        _merge_registers(target._registers, source._registers)
        _sum_estimates(target, source)
        target._pairs_processed += source._pairs_processed
        target._pairs_sampled += source._pairs_sampled
        return target
    if isinstance(target, FreeRSBatch):
        _require(
            (target.M, target.register_width, target.seed)
            == (source.M, source.register_width, source.seed),
            "registers, width and seed",
        )
        np.maximum(target._register_state, source._register_state, out=target._register_state)
        target._harmonic_sum = float(
            np.sum(np.exp2(-target._register_state.astype(np.float64)))
        )
        _sum_estimates(target, source)
        target._pairs_processed += source._pairs_processed
        return target
    if isinstance(target, CSE):
        _require(
            (target.M, target.m, target.seed) == (source.M, source.m, source.seed),
            "memory, virtual size and seed",
        )
        _merge_bitarray(target._bits, source._bits)
        for user in source._estimates:
            target._estimates.setdefault(user, 0.0)
        if refresh_estimates:
            refresh_estimates_from_state(target)
        return target
    if isinstance(target, VirtualHLL):
        _require(
            (target.M, target.m, target._registers.width, target.seed)
            == (source.M, source.m, source._registers.width, source.seed),
            "registers, virtual size, width and seed",
        )
        _merge_registers(target._registers, source._registers)
        for user in source._estimates:
            target._estimates.setdefault(user, 0.0)
        if refresh_estimates:
            refresh_estimates_from_state(target)
        return target
    if isinstance(target, PerUserLPC):
        _require(
            (target.bits_per_user, target.seed) == (source.bits_per_user, source.seed),
            "per-user bits and seed",
        )
        return _merge_per_user(target, source, refresh_estimates)
    if isinstance(target, PerUserHLLPP):
        _require(
            (target.registers_per_user, target.register_width, target.seed)
            == (source.registers_per_user, source.register_width, source.seed),
            "per-user registers, width and seed",
        )
        return _merge_per_user(target, source, refresh_estimates)
    raise TypeError(f"no monitor merge support for {type(target).__name__}")


def _merge_per_user(target, source, refresh: bool):
    for user, sketch in source._sketches.items():
        mine = target._sketches.get(user)
        if mine is None:
            target._sketches[user] = copy.deepcopy(sketch)
        else:
            mine.merge(sketch)
        if refresh:
            target._estimates[user] = float(target._sketches[user].estimate())
        else:
            target._estimates.setdefault(user, 0.0)
    return target


def refresh_estimates_from_state(estimator) -> None:
    """Re-evaluate an exact-merge estimator's estimates from its sketch state.

    Estimates of the exact methods are pure functions of the (merged) state;
    additive methods keep their accumulated sums, so this is a no-op for
    them.
    """
    if isinstance(estimator, ShardedEstimator):
        for shard in estimator._shards:
            refresh_estimates_from_state(shard)
        return
    if isinstance(estimator, (CSE, VirtualHLL)):
        users = tracked_users(estimator)
        values = estimator.estimate_fresh_many(users)
        arena = getattr(estimator, "_arena", None)
        if arena is not None and len(users) == arena.n_users:
            # users is the full intern-order population: one column write.
            arena.set_all_estimates(np.asarray(values, dtype=np.float64))
            return
        for user, value in zip(users, values):
            estimator._estimates[user] = value
        return
    if isinstance(estimator, (PerUserLPC, PerUserHLLPP)):
        for user, sketch in estimator._sketches.items():
            estimator._estimates[user] = float(sketch.estimate())
        return


def fresh_estimates(estimator) -> dict[object, float]:
    """Per-user estimates re-evaluated from the estimator's current state.

    For CSE/vHLL the cached ``estimates()`` reflect the shared array *as of
    each user's last arrival* — correct for the paper's streaming protocol,
    but inconsistent with what a multi-epoch merge reports.  Sliding-window
    queries use this fresh view so a one-epoch window and a two-epoch window
    answer with the same semantics.  Read-only: ``estimator`` is untouched.
    """
    if isinstance(estimator, ShardedEstimator):
        combined: dict[object, float] = {}
        for shard in estimator._shards:
            combined.update(fresh_estimates(shard))
        return combined
    if isinstance(estimator, (CSE, VirtualHLL)):
        users = tracked_users(estimator)
        return dict(zip(users, estimator.estimate_fresh_many(users)))
    return estimator.estimates()


def merged_copy(estimators: Sequence):
    """Return a new estimator holding the union of the given epoch states.

    The copy's cached estimates are always refreshed from the merged state,
    *including* for a single-element input: a one-epoch "merge" of CSE/vHLL
    previously kept the as-of-last-arrival cached estimates, so
    ``window_merged(1).estimates()`` disagreed with ``window_estimates(1)``
    (which re-evaluates freshly) — stale values for every user not in the
    live epoch's latest batch.
    """
    if not estimators:
        raise ValueError("need at least one estimator to merge")
    merged = copy.deepcopy(estimators[0])
    for source in estimators[1:]:
        # Defer the exact methods' O(users x m) estimate re-evaluation to a
        # single pass after the last merge.
        merge_into(merged, source, refresh_estimates=False)
    refresh_estimates_from_state(merged)
    return merged


def merged_estimates(estimators: Sequence) -> dict[object, float]:
    """Per-user estimates over the union of the given epoch states.

    Single-epoch queries short-circuit to a fresh (no-copy) re-evaluation of
    the epoch's state, so the answer's semantics do not depend on how many
    epochs the window currently holds.
    """
    if len(estimators) == 1:
        return fresh_estimates(estimators[0])
    return merged_copy(estimators).estimates()
