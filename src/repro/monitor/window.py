"""Epoch-rotating windowed estimation over unbounded streams.

A :class:`WindowedEstimator` owns a ring of per-epoch estimator instances,
all built by the same factory (same method, dimensioning and seed).  The
live epoch absorbs arriving pairs; when the epoch boundary is crossed — a
fixed number of pairs (``epoch_pairs``) or a fixed span of the arrival clock
(``epoch_span``) — the epoch is closed and a fresh estimator starts the next
one.  The ring keeps the most recent ``window_epochs`` epochs, so the
estimator answers two query shapes over an unbounded stream with bounded
memory:

* **tumbling** — one epoch's estimates, exactly what a fresh estimator fed
  only that epoch's pairs reports (each epoch *is* such an estimator);
* **sliding** — the union of the last ``k`` epochs, combined with the
  sketch-level merges of :mod:`repro.monitor.merge` (exact for the
  mergeable methods, additive for FreeBS/FreeRS — see there).

Timestamps are optional everywhere: when none are supplied the arrival
clock is the monotonic event index, which makes ``epoch_span=n`` equivalent
to ``epoch_pairs=n`` on a gap-free stream.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import math
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass

from repro import obs
from repro.core.base import CardinalityEstimator
from repro.engine.base import supports_batch
from repro.monitor.merge import merge_exactness, merged_copy, merged_estimates

UserItemPair = tuple[object, object]

_log = obs.get_logger("monitor.window")

EstimatorFactory = Callable[[int], CardinalityEstimator]


@dataclass
class Epoch:
    """One epoch of the ring: a fresh estimator plus its slice's metadata."""

    index: int
    estimator: CardinalityEstimator
    start_time: float | None = None
    end_time: float | None = None
    pairs: int = 0
    closed: bool = False

    def estimates(self) -> dict[object, float]:
        """The epoch's per-user estimates (a tumbling-window query)."""
        return self.estimator.estimates()

    def summary(self) -> dict[str, object]:
        """JSON-ready metadata of the epoch (no estimates)."""
        return {
            "epoch": self.index,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "pairs": self.pairs,
            "closed": self.closed,
        }


class WindowedEstimator:
    """Ring of per-epoch sketches answering tumbling and sliding queries.

    Parameters
    ----------
    factory:
        Builds the estimator of epoch ``i`` (called with ``i``).  Every call
        must produce the same configuration and seed, otherwise the sliding
        merges are refused.
    epoch_pairs:
        Close the live epoch after exactly this many pairs (event-count
        rotation).  Mutually exclusive with ``epoch_span``.
    epoch_span:
        Close the live epoch when a pair arrives at or past
        ``epoch_start + epoch_span`` on the arrival clock (timestamp
        rotation on a grid anchored at the first pair's timestamp).  Gaps
        longer than one span emit empty epochs, so a silent stream ages out
        of the sliding window like it should.
    window_epochs:
        Ring capacity: how many epochs (including the live one) are kept for
        sliding queries.
    strict_timestamps:
        How to treat a pair whose timestamp precedes the latest one already
        ingested (a *regression* — out-of-order delivery, clock skew, or a
        mix of timestamped and untimestamped batches).  ``False`` (default)
        clamps the regressed timestamp to the newest one seen, so the pair
        lands in the **live** epoch instead of silently mis-rotating the
        ring, and counts it in :attr:`regressions`.  ``True`` raises
        ``ValueError`` instead.
    """

    def __init__(
        self,
        factory: EstimatorFactory,
        epoch_pairs: int | None = None,
        epoch_span: float | None = None,
        window_epochs: int = 8,
        strict_timestamps: bool = False,
    ) -> None:
        if (epoch_pairs is None) == (epoch_span is None):
            raise ValueError("set exactly one of epoch_pairs or epoch_span")
        if epoch_pairs is not None and epoch_pairs <= 0:
            raise ValueError("epoch_pairs must be positive")
        if epoch_span is not None and epoch_span <= 0:
            raise ValueError("epoch_span must be positive")
        if window_epochs <= 0:
            raise ValueError("window_epochs must be positive")
        self._factory = factory
        self.epoch_pairs = epoch_pairs
        self.epoch_span = epoch_span
        self.window_epochs = window_epochs
        self.strict_timestamps = strict_timestamps
        self._ring: deque[Epoch] = deque(maxlen=window_epochs)
        self._epochs_started = 0
        self._pairs_ingested = 0
        self._regressions = 0
        self._last_timestamp: float | None = None
        self._ring.append(self._new_epoch())

    # -- construction helpers --------------------------------------------------

    def _new_epoch(self) -> Epoch:
        epoch = Epoch(index=self._epochs_started, estimator=self._factory(self._epochs_started))
        self._epochs_started += 1
        return epoch

    # -- introspection ---------------------------------------------------------

    @property
    def epochs(self) -> list[Epoch]:
        """The retained epochs, oldest first; the last one is live."""
        return list(self._ring)

    @property
    def live_epoch(self) -> Epoch:
        """The epoch currently absorbing pairs."""
        return self._ring[-1]

    @property
    def epochs_started(self) -> int:
        """Total number of epochs ever started (>= len(ring))."""
        return self._epochs_started

    @property
    def pairs_ingested(self) -> int:
        """Total pairs ingested over the stream's lifetime."""
        return self._pairs_ingested

    @property
    def last_timestamp(self) -> float | None:
        """Arrival-clock position of the most recent pair."""
        return self._last_timestamp

    @property
    def regressions(self) -> int:
        """Pairs whose timestamp regressed and was clamped to the live epoch."""
        return self._regressions

    def window_exactness(self) -> str:
        """Merge guarantee of sliding queries ("exact" or "additive")."""
        return merge_exactness(self._ring[-1].estimator)

    # -- ingestion -------------------------------------------------------------

    def ingest(
        self,
        pairs: Sequence[UserItemPair],
        timestamps: Sequence[float] | None = None,
    ) -> list[Epoch]:
        """Absorb a batch of pairs; return the epochs closed along the way.

        ``timestamps`` should be non-decreasing and not precede previously
        ingested pairs; when omitted, the monotonic event index is used.  A
        timestamp that regresses — within the batch, against an earlier
        batch, or because a timestamped batch preceded an untimestamped one —
        is clamped to the newest timestamp already seen (so the pair lands
        in the live epoch) and counted in :attr:`regressions`; with
        ``strict_timestamps=True`` it raises ``ValueError`` instead.
        """
        pairs = list(pairs)
        if timestamps is None:
            base = self._pairs_ingested
            timestamps = [float(base + offset) for offset in range(len(pairs))]
        else:
            timestamps = [float(value) for value in timestamps]
            if len(timestamps) != len(pairs):
                raise ValueError("timestamps must have one entry per pair")
        timestamps = self._normalize_timestamps(timestamps)
        if not pairs:
            return []
        if self.epoch_span is not None and self._ring[-1].start_time is None:
            # Anchor the epoch grid at the stream's first timestamp.
            self._ring[-1].start_time = timestamps[0]
        closed: list[Epoch] = []
        position = 0
        while position < len(pairs):
            take = self._pairs_until_rotation(timestamps, position)
            if take == 0:
                closed.extend(self._rotate(timestamps[position]))
                continue
            self._feed(
                pairs[position : position + take],
                timestamps[position : position + take],
            )
            position += take
        return closed

    def _normalize_timestamps(self, timestamps: list[float]) -> list[float]:
        """Clamp (or, in strict mode, reject) regressed arrival timestamps.

        The rotation logic (`bisect_left` over the batch, the live-epoch
        boundary test) assumes a non-decreasing arrival clock; a regressed
        timestamp would silently land its pair in the wrong epoch, so it is
        pinned to the newest timestamp already seen — time stands still and
        the pair stays in the live epoch.
        """
        previous = self._last_timestamp
        clamped = 0
        for position, value in enumerate(timestamps):
            if previous is not None and value < previous:
                if self.strict_timestamps:
                    raise ValueError(
                        "timestamps must be non-decreasing across the stream "
                        f"(got {value} after {previous})"
                    )
                timestamps[position] = previous
                clamped += 1
            else:
                previous = value
        self._regressions += clamped
        if clamped:
            obs.counter("monitor.timestamp_regressions").add(clamped)
            _log.warning(
                "timestamps_clamped",
                clamped=clamped,
                total_regressions=self._regressions,
            )
        return timestamps

    def _pairs_until_rotation(self, timestamps: Sequence[float], position: int) -> int:
        """How many pairs from ``position`` still fit in the live epoch."""
        live = self._ring[-1]
        remaining = len(timestamps) - position
        if self.epoch_pairs is not None:
            return min(remaining, self.epoch_pairs - live.pairs)
        boundary = live.start_time + self.epoch_span
        return bisect_left(timestamps, boundary, position) - position

    def _feed(self, chunk: Sequence[UserItemPair], chunk_times: Sequence[float]) -> None:
        live = self._ring[-1]
        if live.start_time is None:
            live.start_time = chunk_times[0]
        estimator = live.estimator
        if supports_batch(estimator):
            estimator.update_batch(list(chunk))
        else:
            for user, item in chunk:
                estimator.update(user, item)
        live.pairs += len(chunk)
        live.end_time = chunk_times[-1]
        self._pairs_ingested += len(chunk)
        self._last_timestamp = chunk_times[-1]

    def _rotate(self, next_timestamp: float) -> list[Epoch]:
        """Close the live epoch (plus any empty grid epochs) and start a new one."""
        obs.counter("monitor.rotations").add()
        closed: list[Epoch] = []
        live = self._ring[-1]
        live.closed = True
        if self.epoch_span is None:
            closed.append(live)
            self._ring.append(self._new_epoch())
            return closed
        live.end_time = live.start_time + self.epoch_span
        closed.append(live)
        # Grid cell immediately after the closed epoch, then the number of
        # *fully empty* cells before the cell containing next_timestamp.
        next_start = live.end_time
        cells_behind = max(0, int(math.floor((next_timestamp - next_start) / self.epoch_span)))
        # Materialise at most a window's worth of empty epochs: anything older
        # would be evicted from the ring immediately anyway.
        emit = min(cells_behind, self.window_epochs)
        first_empty_start = next_start + (cells_behind - emit) * self.epoch_span
        for cell in range(emit):
            empty = self._new_epoch()
            empty.start_time = first_empty_start + cell * self.epoch_span
            empty.end_time = empty.start_time + self.epoch_span
            empty.closed = True
            closed.append(empty)
            self._ring.append(empty)
        fresh = self._new_epoch()
        fresh.start_time = next_start + cells_behind * self.epoch_span
        self._ring.append(fresh)
        return closed

    # -- queries ---------------------------------------------------------------

    def epoch_estimates(self, position: int = -1) -> dict[object, float]:
        """Tumbling-window query: the estimates of one retained epoch.

        ``position`` indexes the ring (default -1, the live epoch).
        """
        return self._ring[position].estimates()

    def window_estimates(self, last: int | None = None) -> dict[object, float]:
        """Sliding-window query: merged estimates of the last ``last`` epochs.

        Defaults to the whole ring (up to ``window_epochs`` epochs, live
        included).  See :mod:`repro.monitor.merge` for the exactness contract
        per method.
        """
        return merged_estimates([epoch.estimator for epoch in self._window_slice(last)])

    def window_merged(self, last: int | None = None) -> CardinalityEstimator:
        """Return a merged estimator copy over the last ``last`` epochs."""
        return merged_copy([epoch.estimator for epoch in self._window_slice(last)])

    def _window_slice(self, last: int | None) -> list[Epoch]:
        if last is None:
            last = self.window_epochs
        if last <= 0:
            raise ValueError("last must be positive")
        return list(self._ring)[-last:]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = (
            f"epoch_pairs={self.epoch_pairs}"
            if self.epoch_pairs is not None
            else f"epoch_span={self.epoch_span}"
        )
        return (
            f"WindowedEstimator({mode}, window={self.window_epochs}, "
            f"epochs={self._epochs_started}, pairs={self._pairs_ingested})"
        )
