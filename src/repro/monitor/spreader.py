"""Continuous top-k super-spreader monitoring with hysteresis alerts.

The one-shot detector (:mod:`repro.detection.super_spreader`) answers "who
is a super spreader *right now*" for a whole-stream estimate.  The monitor
answers the live-traffic question: after every ingested batch it re-ranks
the sliding-window estimates, maintains the continuous top-k spreader set,
and emits *threshold-crossing events* instead of set snapshots — a user
produces one ``start`` alert when its windowed estimate first reaches the
enter threshold and one ``end`` alert when it decays below the exit
threshold, no matter how many batches it stays above.

Flapping is suppressed with hysteresis: the exit threshold is
``enter * (1 - hysteresis)``, so an estimate oscillating around the enter
threshold does not generate an alert storm.  The enter threshold is either
absolute (``threshold``) or relative (``delta``) to the window's total
estimated cardinality, mirroring the paper's ``Delta * n(t)`` rule.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from dataclasses import dataclass

from repro import obs
from repro.monitor.merge import ADDITIVE, merge_exactness
from repro.monitor.topk import TopKTracker
from repro.monitor.window import WindowedEstimator

UserItemPair = tuple[object, object]

_log = obs.get_logger("monitor.spreader")


@dataclass(frozen=True)
class AlertEvent:
    """One threshold-crossing of one user's sliding-window estimate."""

    kind: str  #: "start" (crossed the enter threshold) or "end" (decayed below exit)
    user: object
    estimate: float
    threshold: float
    epoch: int  #: index of the live epoch at evaluation time
    timestamp: float | None  #: arrival-clock position at evaluation time
    sequence: int  #: monotonically increasing alert id

    def to_json(self) -> dict[str, object]:
        """JSON-ready representation (used by the replay feed)."""
        from repro.monitor.view import wire_user

        return {
            "type": "alert",
            "kind": self.kind,
            "user": wire_user(self.user),
            "estimate": round(self.estimate, 3),
            "threshold": round(self.threshold, 3),
            "epoch": self.epoch,
            "timestamp": self.timestamp,
            "sequence": self.sequence,
        }


class SpreaderMonitor:
    """Continuous spreader detection over a :class:`WindowedEstimator`.

    Parameters
    ----------
    window:
        The windowed estimator that owns the epoch ring.
    top_k:
        Size of the continuously maintained top-k spreader set.
    threshold:
        Absolute enter threshold on the windowed estimate.  Mutually
        exclusive with ``delta``.
    delta:
        Relative enter threshold: ``delta * n(t)`` where ``n(t)`` is the sum
        of the window's per-user estimates (the paper's rule with the window
        total standing in for the stream total).
    hysteresis:
        Fraction by which the exit threshold sits below the enter threshold
        (0 <= hysteresis < 1); 0 disables the band.
    """

    def __init__(
        self,
        window: WindowedEstimator,
        top_k: int = 10,
        threshold: float | None = None,
        delta: float | None = None,
        hysteresis: float = 0.2,
    ) -> None:
        if (threshold is None) == (delta is None):
            raise ValueError("set exactly one of threshold or delta")
        if threshold is not None and threshold <= 0:
            raise ValueError("threshold must be positive")
        if delta is not None and not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        if not 0 <= hysteresis < 1:
            raise ValueError("hysteresis must be in [0, 1)")
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        self.window = window
        self.top_k = top_k
        self.threshold = threshold
        self.delta = delta
        self.hysteresis = hysteresis
        self._active: dict[object, bool] = {}
        self._sequence = 0
        self._version = 0
        self._last_enter_threshold = 0.0
        self._tracker = TopKTracker(top_k)
        # Closed-epoch prefix merges are immutable until rotation: caching
        # them makes the per-batch full evaluation cost one live-epoch merge
        # instead of a whole-ring merge (bit-identical — see view.py).
        from repro.monitor.view import SlidingMergeCache

        self._merge_cache = SlidingMergeCache()
        self._last_window_estimates: Mapping[object, float] | None = None
        #: None until the first evaluation decides whether the method's
        #: sliding estimates can be maintained incrementally (additive merge).
        self._incremental_capable: bool | None = None
        self._primed = False
        self._pairs_seen = 0
        self._incremental_evaluations = 0
        self._full_evaluations = 0

    # -- ingestion + evaluation ------------------------------------------------

    def observe(
        self,
        pairs: Sequence[UserItemPair],
        timestamps: Sequence[float] | None = None,
    ) -> list[AlertEvent]:
        """Ingest one batch, re-evaluate the window, return new alert events.

        Between epoch rotations, methods with *additive* sliding merges
        (FreeBS/FreeRS, sharded included) take the incremental path: only
        the users touched by this batch are re-scored (their windowed
        estimate is the left-fold sum of their per-epoch estimates — plain
        dict lookups), and the continuous top-k absorbs just those updates.
        Any rotation, and every exact-merge method, falls back to the full
        re-evaluation in :meth:`evaluate`.  Both paths produce bit-identical
        estimates and top-k (asserted by the property suite).
        """
        pairs = list(pairs)  # may be a generator; it is iterated twice below
        touched = dict.fromkeys(user for user, _item in pairs)
        # Ingest that bypassed observe() (direct window.ingest calls) makes
        # the tracker's score table stale for users this batch did not touch;
        # detect it and fall back to a full re-evaluation.
        stale = self.window.pairs_ingested != self._pairs_seen
        closed = self.window.ingest(pairs, timestamps)
        if not closed and not stale and self._primed and self._can_increment():
            return self._evaluate_incremental(touched)
        return self.evaluate()

    def _can_increment(self) -> bool:
        if self._incremental_capable is None:
            try:
                exactness = merge_exactness(self.window.live_epoch.estimator)
            except TypeError:  # estimator without monitor merge support
                exactness = None
            self._incremental_capable = exactness == ADDITIVE
        return self._incremental_capable

    def evaluate(self) -> list[AlertEvent]:
        """Fully re-rank the sliding window and emit threshold-crossing events."""
        estimates = self._merge_cache.sliding_estimates(self.window)
        self._tracker.full_refresh(estimates)
        self._full_evaluations += 1
        obs.counter("monitor.evaluations", path="full").add()
        self._primed = True
        self._pairs_seen = self.window.pairs_ingested
        # Cache for same-state readers (e.g. the replay feed's window
        # records): the sliding merge deep-copies a sketch, so recomputing
        # it per reader would double the dominant per-batch cost.  The
        # tracker's score table *is* the window estimates (updated in
        # place, first-seen key order).
        scores = self._tracker.scores
        self._last_window_estimates = scores
        enter = self._enter_threshold()
        exit_threshold = enter * (1.0 - self.hysteresis)
        epoch = self.window.live_epoch.index
        timestamp = self.window.last_timestamp
        alerts: list[AlertEvent] = []
        # One vectorised threshold select instead of boxing every (user,
        # score) pair; candidate order is insertion order, so emission order
        # and sequence numbers are unchanged.
        for user, estimate in scores.threshold_candidates(enter):
            if user not in self._active:
                self._active[user] = True
                alerts.append(self._emit("start", user, estimate, enter, epoch, timestamp))
        alerts.extend(self._end_alerts(scores, exit_threshold, epoch, timestamp))
        self._last_enter_threshold = enter
        self._version += 1
        return alerts

    def _evaluate_incremental(self, touched: dict[object, None]) -> list[AlertEvent]:
        """Re-score only the batch's users (additive methods, no rotation).

        A touched user's windowed estimate is the sum of its per-epoch
        cached estimates in ring order — exactly the left fold the sliding
        merge's ``_sum_estimates`` performs, so the value is bit-identical
        to a full merge.  Untouched users' additive estimates cannot change
        without a rotation, and the enter threshold is non-decreasing while
        scores only grow, so scanning the touched users (for start alerts)
        plus the active set (for end alerts) sees every possible crossing.
        """
        epoch_estimators = [epoch.estimator for epoch in self.window.epochs]
        changed: dict[object, float] = {}
        for user in touched:
            value = 0.0
            for estimator in epoch_estimators:
                value += estimator.estimate(user)
            changed[user] = value
        self._tracker.apply_updates(changed)
        self._incremental_evaluations += 1
        obs.counter("monitor.evaluations", path="incremental").add()
        self._pairs_seen = self.window.pairs_ingested
        scores = self._tracker.scores
        self._last_window_estimates = scores
        enter = self._enter_threshold()
        exit_threshold = enter * (1.0 - self.hysteresis)
        epoch = self.window.live_epoch.index
        timestamp = self.window.last_timestamp
        alerts: list[AlertEvent] = []
        # Scan the dirty set in first-seen (score-table) order so alert
        # emission order and sequence numbers match what a full evaluation
        # of the same state emits — the snapshot-resume identity contract.
        for user in self._tracker.rank_order(changed):
            estimate = changed[user]
            if estimate >= enter and user not in self._active:
                self._active[user] = True
                alerts.append(self._emit("start", user, estimate, enter, epoch, timestamp))
        alerts.extend(self._end_alerts(scores, exit_threshold, epoch, timestamp))
        self._last_enter_threshold = enter
        self._version += 1
        return alerts

    def _end_alerts(
        self,
        scores: dict[object, float],
        exit_threshold: float,
        epoch: int,
        timestamp: float | None,
    ) -> list[AlertEvent]:
        alerts: list[AlertEvent] = []
        for user in [
            user for user in self._active if scores.get(user, 0.0) < exit_threshold
        ]:
            del self._active[user]
            alerts.append(
                self._emit(
                    "end", user, scores.get(user, 0.0), exit_threshold, epoch, timestamp
                )
            )
        return alerts

    def _enter_threshold(self) -> float:
        if self.threshold is not None:
            return self.threshold
        return self.delta * self._tracker.total()

    def _emit(
        self,
        kind: str,
        user: object,
        estimate: float,
        threshold: float,
        epoch: int,
        timestamp: float | None,
    ) -> AlertEvent:
        event = AlertEvent(
            kind=kind,
            user=user,
            estimate=float(estimate),
            threshold=float(threshold),
            epoch=epoch,
            timestamp=timestamp,
            sequence=self._sequence,
        )
        self._sequence += 1
        obs.counter("monitor.alerts", kind=kind).add()
        _log.info(
            "spreader_alert",
            kind=kind,
            user=user,
            estimate=round(float(estimate), 3),
            threshold=round(float(threshold), 3),
            epoch=epoch,
            sequence=event.sequence,
        )
        return event

    # -- continuous state ------------------------------------------------------

    @property
    def active_spreaders(self) -> list[object]:
        """Users currently inside the alert band (start emitted, no end yet)."""
        return list(self._active)

    @property
    def current_top(self) -> list[tuple[object, float]]:
        """The continuously maintained top-k (user, estimate) ranking."""
        return self._tracker.head

    @property
    def incremental_evaluations(self) -> int:
        """Batches absorbed through the dirty-set incremental path."""
        return self._incremental_evaluations

    @property
    def full_evaluations(self) -> int:
        """Batches that required a full sliding-window re-evaluation."""
        return self._full_evaluations

    @property
    def last_enter_threshold(self) -> float:
        """The enter threshold used by the most recent evaluation."""
        return self._last_enter_threshold

    def last_window_estimates(self) -> Mapping[object, float]:
        """The sliding-window estimates from the most recent evaluation.

        The backing table is the monitor's live score state, mutated in
        place by later evaluations — handing it out directly would let a
        reader race a concurrent ingest thread mid-iteration (or corrupt the
        top-k tracker by mutating it).  When the table supports it, readers
        get an O(1) copy-on-write :meth:`~repro.state.ScoreTable.checkout`
        — the table copies its columns only if a later evaluation actually
        mutates them — instead of the old O(users) dict copy per call.
        Falls back to a fresh merge when nothing was ingested since the
        monitor was built or restored.
        """
        current = self._last_window_estimates
        if current is None:
            current = self._last_window_estimates = self.window.window_estimates()
        checkout = getattr(current, "checkout", None)
        if checkout is not None:
            return checkout()
        return dict(current)

    @property
    def alerts_emitted(self) -> int:
        """Total number of alert events emitted so far."""
        return self._sequence

    @property
    def version(self) -> int:
        """Monotonically increasing state version (bumped per evaluation).

        The service layer stamps every response with the version of the
        read snapshot that answered it, so a client can correlate answers
        with ingest progress.
        """
        return self._version

    def read_snapshot(self):
        """Export an immutable, versioned view for concurrent readers.

        See :mod:`repro.monitor.view`; call while the monitor is quiescent
        (the service layer holds its ingest lock around this).
        """
        from repro.monitor.view import export_read_snapshot

        return export_read_snapshot(self)

    # -- snapshot plumbing -----------------------------------------------------

    def state_to_json(self) -> dict[str, object]:
        """Detector state for :mod:`repro.monitor.snapshot` (keys tagged)."""
        from repro.core.serialization import _estimates_to_json, _key_to_json

        return {
            "active": [_key_to_json(user) for user in self._active],
            "sequence": self._sequence,
            "version": self._version,
            "last_enter_threshold": self._last_enter_threshold,
            "top": _estimates_to_json(dict(self._tracker.head)),
        }

    def state_from_json(self, state: dict[str, object]) -> None:
        """Restore detector state written by :meth:`state_to_json`."""
        from repro.core.serialization import _estimates_from_json, _key_from_json

        self._active = {_key_from_json(kind, key): True for kind, key in state["active"]}
        self._sequence = int(state["sequence"])
        # Older snapshots predate the version counter; resume from zero.
        self._version = int(state.get("version", 0))
        self._last_enter_threshold = float(state["last_enter_threshold"])
        restored = _estimates_from_json(state["top"])
        self._tracker.restore_head(
            sorted(restored.items(), key=lambda pair: pair[1], reverse=True)
        )
        # The score table is rebuilt by the first full evaluation.
        self._primed = False
