"""Continuous top-k super-spreader monitoring with hysteresis alerts.

The one-shot detector (:mod:`repro.detection.super_spreader`) answers "who
is a super spreader *right now*" for a whole-stream estimate.  The monitor
answers the live-traffic question: after every ingested batch it re-ranks
the sliding-window estimates, maintains the continuous top-k spreader set,
and emits *threshold-crossing events* instead of set snapshots — a user
produces one ``start`` alert when its windowed estimate first reaches the
enter threshold and one ``end`` alert when it decays below the exit
threshold, no matter how many batches it stays above.

Flapping is suppressed with hysteresis: the exit threshold is
``enter * (1 - hysteresis)``, so an estimate oscillating around the enter
threshold does not generate an alert storm.  The enter threshold is either
absolute (``threshold``) or relative (``delta``) to the window's total
estimated cardinality, mirroring the paper's ``Delta * n(t)`` rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.monitor.window import WindowedEstimator

UserItemPair = Tuple[object, object]


@dataclass(frozen=True)
class AlertEvent:
    """One threshold-crossing of one user's sliding-window estimate."""

    kind: str  #: "start" (crossed the enter threshold) or "end" (decayed below exit)
    user: object
    estimate: float
    threshold: float
    epoch: int  #: index of the live epoch at evaluation time
    timestamp: Optional[float]  #: arrival-clock position at evaluation time
    sequence: int  #: monotonically increasing alert id

    def to_json(self) -> Dict[str, object]:
        """JSON-ready representation (used by the replay feed)."""
        return {
            "type": "alert",
            "kind": self.kind,
            "user": self.user if isinstance(self.user, (int, str)) else str(self.user),
            "estimate": round(self.estimate, 3),
            "threshold": round(self.threshold, 3),
            "epoch": self.epoch,
            "timestamp": self.timestamp,
            "sequence": self.sequence,
        }


class SpreaderMonitor:
    """Continuous spreader detection over a :class:`WindowedEstimator`.

    Parameters
    ----------
    window:
        The windowed estimator that owns the epoch ring.
    top_k:
        Size of the continuously maintained top-k spreader set.
    threshold:
        Absolute enter threshold on the windowed estimate.  Mutually
        exclusive with ``delta``.
    delta:
        Relative enter threshold: ``delta * n(t)`` where ``n(t)`` is the sum
        of the window's per-user estimates (the paper's rule with the window
        total standing in for the stream total).
    hysteresis:
        Fraction by which the exit threshold sits below the enter threshold
        (0 <= hysteresis < 1); 0 disables the band.
    """

    def __init__(
        self,
        window: WindowedEstimator,
        top_k: int = 10,
        threshold: float | None = None,
        delta: float | None = None,
        hysteresis: float = 0.2,
    ) -> None:
        if (threshold is None) == (delta is None):
            raise ValueError("set exactly one of threshold or delta")
        if threshold is not None and threshold <= 0:
            raise ValueError("threshold must be positive")
        if delta is not None and not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        if not 0 <= hysteresis < 1:
            raise ValueError("hysteresis must be in [0, 1)")
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        self.window = window
        self.top_k = top_k
        self.threshold = threshold
        self.delta = delta
        self.hysteresis = hysteresis
        self._active: Dict[object, bool] = {}
        self._sequence = 0
        self._version = 0
        self._last_enter_threshold = 0.0
        self._top: List[Tuple[object, float]] = []
        self._last_window_estimates: Optional[Dict[object, float]] = None

    # -- ingestion + evaluation ------------------------------------------------

    def observe(
        self,
        pairs: Sequence[UserItemPair],
        timestamps: Sequence[float] | None = None,
    ) -> List[AlertEvent]:
        """Ingest one batch, re-evaluate the window, return new alert events."""
        self.window.ingest(pairs, timestamps)
        return self.evaluate()

    def evaluate(self) -> List[AlertEvent]:
        """Re-rank the sliding window and emit threshold-crossing events."""
        estimates = self.window.window_estimates()
        # Cache for same-state readers (e.g. the replay feed's window
        # records): the sliding merge deep-copies a sketch, so recomputing
        # it per reader would double the dominant per-batch cost.
        self._last_window_estimates = estimates
        enter = self._enter_threshold(estimates)
        exit_threshold = enter * (1.0 - self.hysteresis)
        epoch = self.window.live_epoch.index
        timestamp = self.window.last_timestamp
        alerts: List[AlertEvent] = []
        for user, estimate in estimates.items():
            if estimate >= enter and user not in self._active:
                self._active[user] = True
                alerts.append(self._emit("start", user, estimate, enter, epoch, timestamp))
        for user in [user for user in self._active if estimates.get(user, 0.0) < exit_threshold]:
            del self._active[user]
            alerts.append(
                self._emit(
                    "end", user, estimates.get(user, 0.0), exit_threshold, epoch, timestamp
                )
            )
        ranked = sorted(estimates.items(), key=lambda pair: pair[1], reverse=True)
        self._top = ranked[: self.top_k]
        self._last_enter_threshold = enter
        self._version += 1
        return alerts

    def _enter_threshold(self, estimates: Dict[object, float]) -> float:
        if self.threshold is not None:
            return self.threshold
        total = float(sum(estimates.values()))
        return self.delta * total

    def _emit(
        self,
        kind: str,
        user: object,
        estimate: float,
        threshold: float,
        epoch: int,
        timestamp: Optional[float],
    ) -> AlertEvent:
        event = AlertEvent(
            kind=kind,
            user=user,
            estimate=float(estimate),
            threshold=float(threshold),
            epoch=epoch,
            timestamp=timestamp,
            sequence=self._sequence,
        )
        self._sequence += 1
        return event

    # -- continuous state ------------------------------------------------------

    @property
    def active_spreaders(self) -> List[object]:
        """Users currently inside the alert band (start emitted, no end yet)."""
        return list(self._active)

    @property
    def current_top(self) -> List[Tuple[object, float]]:
        """The continuously maintained top-k (user, estimate) ranking."""
        return list(self._top)

    @property
    def last_enter_threshold(self) -> float:
        """The enter threshold used by the most recent evaluation."""
        return self._last_enter_threshold

    def last_window_estimates(self) -> Dict[object, float]:
        """The sliding-window estimates from the most recent evaluation.

        Falls back to a fresh merge when nothing was ingested since the
        monitor was built or restored.
        """
        if self._last_window_estimates is None:
            self._last_window_estimates = self.window.window_estimates()
        return self._last_window_estimates

    @property
    def alerts_emitted(self) -> int:
        """Total number of alert events emitted so far."""
        return self._sequence

    @property
    def version(self) -> int:
        """Monotonically increasing state version (bumped per evaluation).

        The service layer stamps every response with the version of the
        read snapshot that answered it, so a client can correlate answers
        with ingest progress.
        """
        return self._version

    def read_snapshot(self):
        """Export an immutable, versioned view for concurrent readers.

        See :mod:`repro.monitor.view`; call while the monitor is quiescent
        (the service layer holds its ingest lock around this).
        """
        from repro.monitor.view import export_read_snapshot

        return export_read_snapshot(self)

    # -- snapshot plumbing -----------------------------------------------------

    def state_to_json(self) -> Dict[str, object]:
        """Detector state for :mod:`repro.monitor.snapshot` (keys tagged)."""
        from repro.core.serialization import _estimates_to_json, _key_to_json

        return {
            "active": [_key_to_json(user) for user in self._active],
            "sequence": self._sequence,
            "version": self._version,
            "last_enter_threshold": self._last_enter_threshold,
            "top": _estimates_to_json(dict(self._top)),
        }

    def state_from_json(self, state: Dict[str, object]) -> None:
        """Restore detector state written by :meth:`state_to_json`."""
        from repro.core.serialization import _estimates_from_json, _key_from_json

        self._active = {_key_from_json(kind, key): True for kind, key in state["active"]}
        self._sequence = int(state["sequence"])
        # Older snapshots predate the version counter; resume from zero.
        self._version = int(state.get("version", 0))
        self._last_enter_threshold = float(state["last_enter_threshold"])
        restored = _estimates_from_json(state["top"])
        self._top = sorted(restored.items(), key=lambda pair: pair[1], reverse=True)[
            : self.top_k
        ]
