"""Rate-controlled replay of a dataset through a spreader monitor.

:func:`replay_feed` drives a :class:`~repro.monitor.spreader.SpreaderMonitor`
over a timestamped stream in batches and yields a JSONL-ready feed of
records:

* ``{"type": "window", ...}`` — one per closed epoch: the epoch's metadata
  and tumbling top spreaders (exact per epoch), plus the sliding window's
  top spreaders and total estimate as of the end of the ingesting batch —
  the monitor evaluates once per batch, so when one batch closes several
  epochs their records share the same (post-batch) sliding state;
* ``{"type": "alert", ...}`` — one per threshold-crossing event (see
  :class:`~repro.monitor.spreader.AlertEvent`);
* ``{"type": "snapshot", ...}`` — one per checkpoint written;
* ``{"type": "summary", ...}`` — one final record with lifetime totals.

``rate`` throttles the replay to roughly that many pairs per wall-clock
second (None = as fast as possible), which turns any recorded dataset into
a stand-in for live traffic.  ``skip_pairs`` fast-forwards a resumed replay
past the pairs a restored snapshot has already seen.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import time

from repro.monitor.snapshot import SnapshotStore
from repro.monitor.spreader import SpreaderMonitor
from repro.monitor.view import wire_user as _json_user
from repro.monitor.window import Epoch

UserItemPair = tuple[object, object]


def _top_to_json(ranked: Sequence[tuple[object, float]]) -> list[list[object]]:
    return [[_json_user(user), round(float(estimate), 3)] for user, estimate in ranked]


def _window_record(monitor: SpreaderMonitor, epoch: Epoch) -> dict[str, object]:
    # Reuse the merge and the ranking the monitor's evaluation just computed
    # for this batch (the window state has not changed since).
    window_estimates = monitor.last_window_estimates()
    epoch_estimates = epoch.estimates()
    tumbling_top = sorted(epoch_estimates.items(), key=lambda pair: pair[1], reverse=True)
    return {
        "type": "window",
        **epoch.summary(),
        "users": len(epoch_estimates),
        "tumbling_top": _top_to_json(tumbling_top[: monitor.top_k]),
        "sliding_top": _top_to_json(monitor.current_top),
        "sliding_total_estimate": round(float(sum(window_estimates.values())), 3),
        "enter_threshold": round(monitor.last_enter_threshold, 3),
        "active_spreaders": [_json_user(user) for user in monitor.active_spreaders],
        "exactness": monitor.window.window_exactness(),
    }


def replay_feed(
    monitor: SpreaderMonitor,
    pairs: Sequence[UserItemPair],
    timestamps: Sequence[float] | None = None,
    batch_size: int = 2048,
    rate: float | None = None,
    snapshot_store: SnapshotStore | None = None,
    snapshot_every: int = 0,
    skip_pairs: int = 0,
) -> Iterator[dict[str, object]]:
    """Replay ``pairs`` through ``monitor``; yield the JSONL feed records."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if rate is not None and rate <= 0:
        raise ValueError("rate must be positive (or None for full speed)")
    if snapshot_every < 0:
        raise ValueError("snapshot_every must be non-negative")
    if snapshot_every and snapshot_store is None:
        raise ValueError("snapshot_every requires a snapshot_store")
    pairs = list(pairs)
    if timestamps is not None:
        timestamps = [float(value) for value in timestamps]
        if len(timestamps) != len(pairs):
            raise ValueError("timestamps must have one entry per pair")
    if skip_pairs:
        pairs = pairs[skip_pairs:]
        timestamps = None if timestamps is None else timestamps[skip_pairs:]

    batches_done = 0
    alerts_emitted = 0
    windows_emitted = 0
    for start in range(0, len(pairs), batch_size):
        batch = pairs[start : start + batch_size]
        batch_times = None if timestamps is None else timestamps[start : start + batch_size]
        closed = monitor.window.ingest(batch, batch_times)
        alerts = monitor.evaluate()
        for epoch in closed:
            windows_emitted += 1
            yield _window_record(monitor, epoch)
        for alert in alerts:
            alerts_emitted += 1
            yield alert.to_json()
        batches_done += 1
        if snapshot_every and batches_done % snapshot_every == 0:
            path = snapshot_store.save(monitor)
            yield {
                "type": "snapshot",
                "path": str(path),
                "pairs_ingested": monitor.window.pairs_ingested,
            }
        if rate is not None:
            time.sleep(len(batch) / rate)

    # Close out: report the live epoch as a final (still-open) window.
    live = monitor.window.live_epoch
    if live.pairs:
        windows_emitted += 1
        yield _window_record(monitor, live)
    if snapshot_store is not None:
        path = snapshot_store.save(monitor)
        yield {
            "type": "snapshot",
            "path": str(path),
            "pairs_ingested": monitor.window.pairs_ingested,
        }
    yield {
        "type": "summary",
        "pairs_ingested": monitor.window.pairs_ingested,
        "epochs_started": monitor.window.epochs_started,
        "windows_emitted": windows_emitted,
        "alerts_emitted": alerts_emitted,
        "active_spreaders": [_json_user(user) for user in monitor.active_spreaders],
        "top": _top_to_json(monitor.current_top),
    }
