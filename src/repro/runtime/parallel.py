"""Multiprocess parallel ingest: partition users across shard workers.

The paper's scale-out story: a :class:`~repro.engine.ShardedEstimator`
partitions users across ``K`` independent sub-sketches, and workers owning
disjoint shard sets can ingest disjoint slices of the stream and later merge
their states into exactly the estimator a single process would have built.
This module turns that property into an execution path:

1. the **coordinator** reads the stream in chunks, derives per-pair shard
   ids with the engine's routing hash, and streams each worker the slice of
   pairs whose shards it owns (worker ``w`` owns shards ``{k : k % W == w}``).
   For all-integer streams only the user folds are computed serially — the
   raw id slices ship to the workers, which run the full vectorised encode
   themselves, keeping the coordinator's serial fraction small; other
   streams are encoded once by the coordinator
   (:class:`~repro.engine.EncodedBatch`) and split with
   :meth:`~repro.engine.EncodedBatch.subset`;
2. each **worker** builds the same ``K``-shard estimator from the central
   method registry, replays its sub-batches through the vectorised
   ``update_encoded`` path, and returns its serialised state;
3. the coordinator restores the worker states and folds them into one final
   estimator via the sketch-level :meth:`~repro.engine.ShardedEstimator.merge`
   (legal because the touched shard sets are disjoint by construction).

Two chunk-handoff transports carry step 1's slices to the workers.  The
default, ``transport="shm"``, writes each slice into a per-worker
shared-memory slot ring (:mod:`repro.runtime.shm`) — one memcpy in, a
zero-copy numpy view out.  ``transport="queue"`` is the original
``multiprocessing.Manager`` path — every chunk pickled through the
manager's proxy process — kept as the portable fallback and as the second
arm of the bit-identity tests.  Both transports preserve per-worker FIFO
order and the backpressure/liveness semantics: a bounded buffer of four
in-flight chunks per worker, a per-chunk liveness check, and a prompt
:class:`WorkerIngestError` (worker id + remote traceback) when a worker
dies, with buffered chunks drained so surviving siblings stop at their
next read.

Because shard routing is deterministic in the user id, each shard sees
exactly the pair sub-sequence it would have seen in a single-process run with
the same chunking, and the batch paths are bit-identical to the scalar paths
— so the merged estimator's estimates are **bit-identical** to the
single-process ``shards=K`` run for either transport and any worker count
(asserted by the test-suite and the CI smoke job).  ``workers=1`` runs the
identical chunk/encode/route loop in-process, which is the fair baseline the
speedup benchmark measures against.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

import pickle
import queue as queue_module
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.base import CardinalityEstimator
from repro.engine.base import DEFAULT_CHUNK_PAIRS
from repro.engine.encoding import EncodedBatch
from repro.engine.sharded import ShardedEstimator, route_pair_shards, route_user_hashes
from repro.hashing import fold_key_array
from repro.registry import build
from repro.runtime.shm import (
    ShmRing,
    as_raw_arrays,
    ingest_item,
    new_worker_stats,
    shm_worker,
    slot_size_for,
)

UserItemPair = tuple[object, object]

_log = obs.get_logger("runtime.parallel")

#: Encoded chunks buffered per worker (queue depth / shm ring slots) before
#: the coordinator blocks — enough to keep workers busy, small enough to
#: bound coordinator memory.
QUEUE_DEPTH = 4

#: Chunk-handoff transports accepted by :func:`parallel_ingest`.
TRANSPORTS = ("shm", "queue")


class WorkerIngestError(RuntimeError):
    """A shard worker failed mid-ingest.

    Raised by the coordinator as soon as a worker's death is observed —
    during routing, while blocked on a bounded queue, or at result
    collection — instead of leaving the run to grind on (or, worse, block
    forever on a queue the dead worker will never drain).  Carries the
    failing worker's index and the worker-side traceback text; the original
    exception is chained as ``__cause__``.
    """

    def __init__(self, worker: int, cause: BaseException, remote_traceback: str = ""):
        detail = f": {cause}" if str(cause) else ""
        message = f"ingest worker {worker} failed with {type(cause).__name__}{detail}"
        if remote_traceback:
            message += f"\n--- worker {worker} traceback ---\n{remote_traceback}"
        super().__init__(message)
        self.worker = worker
        self.remote_traceback = remote_traceback
        # Construction is the one point every raise site passes through, so
        # the failure counter and the structured record live here.
        obs.counter("ingest.parallel.worker_failures").add()
        _log.error(
            "ingest_worker_failed",
            worker=worker,
            cause=f"{type(cause).__name__}: {cause}",
            has_remote_traceback=bool(remote_traceback),
        )


def _raise_worker_error(worker: int, error: BaseException) -> None:
    """Re-raise a worker's exception as :class:`WorkerIngestError`.

    ``concurrent.futures`` ships the worker-side traceback back as a
    ``_RemoteTraceback`` chained under the exception; surface its text so the
    coordinator's error names the real crash site inside the worker.
    """
    remote = ""
    cause = getattr(error, "__cause__", None)
    if cause is not None and type(cause).__name__ == "_RemoteTraceback":
        remote = str(cause)
    raise WorkerIngestError(worker, error, remote) from error


def _check_workers(futures) -> None:
    """Raise promptly if any worker future has already failed."""
    for worker, future in enumerate(futures):
        if future.done() and future.exception() is not None:
            _raise_worker_error(worker, future.exception())


def _drain_queues(queues) -> None:
    """Discard buffered chunks so surviving workers stop at the next get().

    Called on the abort path: live siblings should see their sentinel on the
    next queue read instead of first chewing through a backlog of chunks
    whose merged result will never be used, and the manager should not shut
    down with megabytes of arrays still parked in its queues.
    """
    for chunk_queue in queues:
        while True:
            try:
                chunk_queue.get_nowait()
            except queue_module.Empty:
                break
            except (EOFError, BrokenPipeError, ConnectionError):  # manager gone
                break


@dataclass(frozen=True)
class IngestReport:
    """Outcome of one (possibly parallel) ingest run."""

    #: The merged estimator (a ``K``-shard :class:`ShardedEstimator`).
    estimator: CardinalityEstimator
    method: str
    workers: int
    shards: int
    #: Pairs ingested (duplicates included).
    pairs: int
    #: Wall-clock seconds of the ingest (encode + route + update + merge).
    seconds: float
    #: Chunk-handoff transport used ("shm", "queue"; "none" for workers=1).
    transport: str = "none"

    @property
    def pairs_per_second(self) -> float:
        """Ingest throughput; 0.0 for an empty or instantaneous run."""
        return self.pairs / self.seconds if self.seconds > 0 else 0.0

    def estimates(self) -> dict[object, float]:
        """Per-user estimates of the merged estimator."""
        return self.estimator.estimates()


def worker_for_shards(shard_ids: np.ndarray, workers: int) -> np.ndarray:
    """Owning worker of each shard id: the round-robin rule ``shard % W``.

    The single definition of the partition — the coordinator's routing and
    :func:`owned_shards` both derive from it, so they cannot drift apart
    (drift would break the disjoint-shard merge contract).
    """
    return shard_ids % workers


def owned_shards(worker: int, workers: int, shards: int) -> list[int]:
    """Shard ids owned by ``worker`` (the inverse view of the same rule)."""
    all_shards = np.arange(shards)
    return all_shards[worker_for_shards(all_shards, workers) == worker].tolist()


def _raw_int_arrays(stream):
    """The stream as two integer arrays, or None when not representable."""
    if hasattr(stream, "to_int_arrays"):
        try:
            return stream.to_int_arrays()
        except TypeError:
            return None
    return None


def _encoded_chunks(stream, chunk_size: int) -> Iterator[EncodedBatch]:
    """Encode a stream into :class:`EncodedBatch` chunks of ``chunk_size`` pairs.

    All-integer :class:`~repro.streams.GraphStream` inputs take the fully
    vectorised array encoder (no per-pair Python fold); everything else falls
    back to the generic pair encoder.  Both produce bit-identical folds, and
    the chunk boundaries match :func:`repro.engine.base.process_stream`'s, so
    the resulting estimator state is independent of the path taken.
    """
    arrays = _raw_int_arrays(stream)
    if arrays is not None:
        users, items = arrays
        for start in range(0, len(users), chunk_size):
            yield EncodedBatch.from_int_arrays(
                users[start : start + chunk_size], items[start : start + chunk_size]
            )
        return
    buffer: list[UserItemPair] = []
    for pair in stream:
        buffer.append(pair)
        if len(buffer) >= chunk_size:
            yield EncodedBatch.from_pairs(buffer)
            buffer = []
    if buffer:
        yield EncodedBatch.from_pairs(buffer)


def _route_stream(
    stream,
    chunk_size: int,
    shards: int,
    workers: int,
    seed: int,
    send: Callable[[int, object], None],
    check: Callable[[], None],
) -> int:
    """Route a stream's chunks to their owning workers; return the pair count.

    The single routing loop both transports share: ``send(worker, item)``
    delivers one routed slice (raw ``(users, items)`` arrays on the integer
    fast path, an :class:`EncodedBatch` otherwise) and ``check()`` is the
    per-chunk liveness probe — a dead worker whose buffer never fills (few
    pairs route to it) must still abort the run now, not at collection.
    """
    pairs = 0
    arrays = _raw_int_arrays(stream)
    if arrays is not None:
        # Fast path: route on the user folds alone and ship raw id slices;
        # the workers run the full encode in parallel.
        users, items = arrays
        for offset in range(0, len(users), chunk_size):
            check()
            chunk_users = users[offset : offset + chunk_size]
            chunk_items = items[offset : offset + chunk_size]
            pairs += len(chunk_users)
            folds = fold_key_array(chunk_users)
            pair_workers = worker_for_shards(
                route_user_hashes(folds, shards, seed), workers
            )
            for w in np.unique(pair_workers):
                mask = pair_workers == w
                send(int(w), (chunk_users[mask], chunk_items[mask]))
    else:
        for batch in _encoded_chunks(stream, chunk_size):
            check()
            pairs += len(batch)
            pair_shards = route_pair_shards(batch, shards, seed)
            pair_workers = worker_for_shards(pair_shards, workers)
            for w in np.unique(pair_workers):
                send(int(w), batch.subset(pair_workers == w))
    return pairs


def _worker_ingest(method: str, config, expected_users: int, shards: int, chunk_queue):
    """Worker body (queue transport): replay sub-batches, return state + stats.

    Runs on a pool process.  The estimator is rebuilt from the registry with
    the exact configuration the coordinator uses, so its per-shard
    sub-sketches (hash seeds included) match the single-process run's.
    Queue items are either pre-encoded batches or raw ``(users, items)``
    array slices (the coordinator's fast path for integer streams), which
    the worker encodes itself — folds are bit-identical either way.  The
    returned stats dict (chunks, pairs, encode/update seconds) feeds the
    coordinator's metrics registry.
    """
    from repro.core import serialization

    estimator = build(method, config, expected_users, shards=shards)
    stats = new_worker_stats()
    while True:
        item = chunk_queue.get()
        if item is None:
            break
        ingest_item(estimator, item, stats)
    return serialization.dumps(estimator), stats


def _put_with_backpressure(chunk_queue, item, futures, worker: int) -> None:
    """Enqueue one chunk, surfacing worker crashes instead of blocking forever."""
    while True:
        try:
            chunk_queue.put(item, timeout=1.0)
            break
        except queue_module.Full:
            _check_workers(futures)
    obs.counter("ingest.parallel.chunks", transport="queue").add()
    if obs.REGISTRY.enabled:
        # qsize() on a Manager queue is a proxy round trip — only pay for
        # it when telemetry is on (and never on platforms without it).
        try:
            depth = chunk_queue.qsize()
        except NotImplementedError:  # pragma: no cover - macOS
            return
        obs.gauge("ingest.queue.depth", worker=str(worker)).set(depth)


# -- shm transport plumbing (coordinator side) ---------------------------------


def _check_ring_workers(processes, rings) -> None:
    """Raise promptly if any shm worker process has died.

    A worker that exited cleanly posted ``("ok", state, stats)`` first —
    park that on the ring for collection.  Anything else (posted error, or death
    without a word: segfault, OOM kill) aborts the run.
    """
    for worker, (process, ring) in enumerate(zip(processes, rings)):
        if process.is_alive() or ring.cached_result is not None:
            continue
        try:
            result = ring.results.get_nowait()
        except queue_module.Empty:
            result = None
        if result is not None and result[0] == "ok":
            ring.cached_result = result
            continue
        if result is not None:
            _tag, remote_tb, cause_repr = result
            raise WorkerIngestError(worker, RuntimeError(cause_repr), remote_tb)
        raise WorkerIngestError(
            worker,
            RuntimeError(f"worker process exited with code {process.exitcode}"),
        )


def _ring_send(ring: ShmRing, item, check: Callable[[], None], worker: int) -> None:
    """Deliver one routed slice through a ring slot (or inline when too big).

    Backpressure is slot acquisition: with all slots in flight this blocks
    on the free queue, polling ``check()`` so a worker crash surfaces as
    :class:`WorkerIngestError` instead of a hang — mirroring
    :func:`_put_with_backpressure` on the Manager path.
    """
    obs.counter("ingest.parallel.chunks", transport="shm").add()
    raw = as_raw_arrays(item)
    blob = None
    if raw is None or raw[0].nbytes + raw[1].nbytes > ring.capacity:
        blob = pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
        if len(blob) > ring.capacity:
            # Oversize fallback: straight through the (bounded) ready queue,
            # which preserves per-worker FIFO order with the slot payloads.
            obs.counter("ingest.shm.pickle_fallbacks", path="inline").add()
            _log.debug(
                "shm_pickle_fallback", path="inline", worker=worker, bytes=len(blob)
            )
            _ring_put(ring, ("inline", blob), check)
            return
        obs.counter("ingest.shm.pickle_fallbacks", path="slot").add()
        _log.debug("shm_pickle_fallback", path="slot", worker=worker, bytes=len(blob))
    while True:
        try:
            slot = ring.free.get(timeout=1.0)
            break
        except queue_module.Empty:
            check()
    if blob is None:
        ring.write_raw(slot, *raw)
    else:
        ring.write_pickled(slot, blob)
    if obs.REGISTRY.enabled:
        try:
            free_slots = ring.free.qsize()
        except NotImplementedError:  # pragma: no cover - macOS
            free_slots = None
        if free_slots is not None:
            obs.gauge("ingest.shm.slots_inflight", worker=str(worker)).set(
                ring.n_slots - free_slots
            )
    _ring_put(ring, ("slot", slot), check)


def _ring_put(ring: ShmRing, message, check: Callable[[], None]) -> None:
    while True:
        try:
            ring.ready.put(message, timeout=1.0)
            return
        except queue_module.Full:
            check()


def _collect_ring_result(worker: int, process, ring: ShmRing) -> tuple[str, dict]:
    """One worker's ``(serialised state, stats)``, or :class:`WorkerIngestError`."""
    result = ring.cached_result
    while result is None:
        try:
            result = ring.results.get(timeout=1.0)
        except queue_module.Empty:
            if process.is_alive():
                continue
            # Dead without a visible result: grant one grace read for bytes
            # still in the pipe (the queue feeder flushes at process exit).
            try:
                result = ring.results.get(timeout=2.0)
            except queue_module.Empty:
                raise WorkerIngestError(
                    worker,
                    RuntimeError(
                        f"worker process exited with code {process.exitcode} "
                        "without posting a result"
                    ),
                ) from None
    if result[0] == "ok":
        return result[1], result[2]
    _tag, remote_tb, cause_repr = result
    raise WorkerIngestError(worker, RuntimeError(cause_repr), remote_tb)


def _record_worker_stats(transport: str, worker: int, stats: dict) -> None:
    """Fold one worker's shipped stats into the coordinator's registry."""
    if not stats:
        return
    label = str(worker)
    obs.counter("ingest.parallel.worker_chunks", transport=transport, worker=label).add(
        stats.get("chunks", 0)
    )
    obs.counter(
        "ingest.parallel.worker_encode_seconds", transport=transport, worker=label
    ).add(stats.get("encode_seconds", 0.0))
    obs.counter(
        "ingest.parallel.worker_update_seconds", transport=transport, worker=label
    ).add(stats.get("update_seconds", 0.0))


def _shm_parallel_ingest(
    stream, method, config, expected_users, workers, shards, chunk_size
) -> tuple[list[str], int]:
    """Run the shm-transport ingest; return (worker payloads, pair count)."""
    import multiprocessing

    context = multiprocessing.get_context()
    rings = [
        ShmRing(context, slot_size_for(chunk_size), n_slots=QUEUE_DEPTH)
        for _ in range(workers)
    ]
    processes = [
        context.Process(
            target=shm_worker,
            args=(
                method,
                config,
                expected_users,
                shards,
                ring.shm.name,
                ring.slot_size,
                ring.free,
                ring.ready,
                ring.results,
            ),
            daemon=True,
        )
        for ring in rings
    ]
    try:
        for process in processes:
            process.start()

        def check() -> None:
            _check_ring_workers(processes, rings)

        try:
            pairs = _route_stream(
                stream,
                chunk_size,
                shards,
                workers,
                config.seed,
                lambda w, item: _ring_send(rings[w], item, check, w),
                check,
            )
        except WorkerIngestError:
            # Cancel the siblings: discard their buffered chunks so the
            # sentinels delivered below are the next thing they read.
            _drain_queues(ring.ready for ring in rings)
            raise
        finally:
            # Always deliver the sentinels: a worker blocked on get() would
            # otherwise never exit.  A dead process needs none — and its
            # full ready queue would never drain, so don't block on it.
            for process, ring in zip(processes, rings):
                while process.is_alive():
                    try:
                        ring.ready.put(None, timeout=0.5)
                        break
                    except queue_module.Full:
                        continue
        payloads = []
        for worker, (process, ring) in enumerate(zip(processes, rings)):
            payload, stats = _collect_ring_result(worker, process, ring)
            _record_worker_stats("shm", worker, stats)
            payloads.append(payload)
        return payloads, pairs
    finally:
        for process in processes:
            if process.pid is not None:
                process.join(timeout=10.0)
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.terminate()
                    process.join(timeout=5.0)
        for ring in rings:
            ring.close()
            ring.unlink()


def _queue_parallel_ingest(
    stream, method, config, expected_users, workers, shards, chunk_size
) -> tuple[list[str], int]:
    """Run the Manager-queue ingest; return (worker payloads, pair count)."""
    import multiprocessing

    context = multiprocessing.get_context()
    with multiprocessing.Manager() as manager:
        queues = [manager.Queue(maxsize=QUEUE_DEPTH) for _ in range(workers)]
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as executor:
            futures = [
                executor.submit(
                    _worker_ingest, method, config, expected_users, shards, queues[w]
                )
                for w in range(workers)
            ]
            try:
                pairs = _route_stream(
                    stream,
                    chunk_size,
                    shards,
                    workers,
                    config.seed,
                    lambda w, item: _put_with_backpressure(
                        queues[w], item, futures, w
                    ),
                    lambda: _check_workers(futures),
                )
            except WorkerIngestError:
                # Cancel the siblings: discard their buffered chunks so the
                # sentinels delivered below are the next thing they read.
                for future in futures:
                    future.cancel()
                _drain_queues(queues)
                raise
            finally:
                # Always deliver the sentinels: a worker blocked on get()
                # would otherwise hang the pool shutdown on coordinator
                # errors.  A finished future means the worker crashed (it
                # only returns after seeing a sentinel), so skip its queue
                # rather than blocking on it.
                for future, chunk_queue in zip(futures, queues):
                    while not future.done():
                        try:
                            chunk_queue.put(None, timeout=0.5)
                            break
                        except queue_module.Full:
                            continue
            payloads = []
            for worker, future in enumerate(futures):
                try:
                    payload, stats = future.result()
                except Exception as error:  # worker died after routing finished
                    _raise_worker_error(worker, error)
                _record_worker_stats("queue", worker, stats)
                payloads.append(payload)
            return payloads, pairs


def parallel_ingest(
    stream: Iterable[UserItemPair],
    method: str = "FreeRS",
    config=None,
    expected_users: int = 1000,
    workers: int = 1,
    shards: int | None = None,
    chunk_size: int | None = None,
    transport: str = "shm",
) -> IngestReport:
    """Ingest a stream with ``workers`` processes; return the merged estimator.

    Parameters
    ----------
    stream:
        Iterable of (user, item) pairs; a :class:`~repro.streams.GraphStream`
        of integer ids takes the fully vectorised encode path.
    method:
        Method name from the central registry.
    config:
        Dimensioning configuration (defaults to
        :class:`~repro.experiments.config.ExperimentConfig`); the seed also
        seeds the shard routing, so runs with equal configs are comparable.
    expected_users:
        Population used to dimension the per-user baselines.
    workers:
        Ingest processes.  ``1`` runs the same chunk/encode/route loop
        in-process (no pool) — the baseline the benchmark compares against.
    shards:
        Shard count ``K`` of the underlying :class:`ShardedEstimator`;
        defaults to ``workers`` and must be ``>= workers``.  Runs with equal
        ``(config, shards)`` are bit-identical for any worker count.
    chunk_size:
        Pairs per encoded chunk (default
        :data:`~repro.engine.base.DEFAULT_CHUNK_PAIRS`).
    transport:
        Chunk handoff to the workers: ``"shm"`` (default) writes slices into
        per-worker shared-memory slot rings (:mod:`repro.runtime.shm`);
        ``"queue"`` pickles them through ``multiprocessing.Manager`` queues.
        Both produce bit-identical estimators; ignored when ``workers == 1``.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    if transport not in TRANSPORTS:
        raise ValueError(
            f"transport must be one of {', '.join(TRANSPORTS)}, not {transport!r}"
        )
    if shards is None:
        shards = max(workers, 1)
    if shards < workers:
        raise ValueError(
            f"shards ({shards}) must be at least the worker count ({workers}); "
            "each worker needs at least one shard to own"
        )
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_PAIRS
    elif chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    if config is None:
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig()

    start = time.perf_counter()
    if workers == 1:
        estimator = build(method, config, expected_users, shards=shards)
        pairs = 0
        for batch in _encoded_chunks(stream, chunk_size):
            pairs += len(batch)
            estimator.update_encoded(batch)
        obs.counter("ingest.parallel.pairs", transport="none").add(pairs)
        obs.histogram("ingest.parallel.run_seconds", transport="none").observe(
            time.perf_counter() - start
        )
        return IngestReport(
            estimator=estimator,
            method=method,
            workers=1,
            shards=shards,
            pairs=pairs,
            seconds=time.perf_counter() - start,
        )

    runner = _shm_parallel_ingest if transport == "shm" else _queue_parallel_ingest
    payloads, pairs = runner(
        stream, method, config, expected_users, workers, shards, chunk_size
    )
    obs.counter("ingest.parallel.pairs", transport=transport).add(pairs)
    obs.histogram("ingest.parallel.run_seconds", transport=transport).observe(
        time.perf_counter() - start
    )

    from repro.core import serialization

    merged = build(method, config, expected_users, shards=shards)
    assert isinstance(merged, ShardedEstimator)
    for payload in payloads:
        merged.merge(serialization.loads(payload))
    return IngestReport(
        estimator=merged,
        method=method,
        workers=workers,
        shards=shards,
        pairs=pairs,
        seconds=time.perf_counter() - start,
        transport=transport,
    )
