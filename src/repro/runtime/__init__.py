"""Parallel ingest runtime: multiprocess scale-out over sharded estimators.

:func:`parallel_ingest` partitions users across a pool of shard workers
(each replaying the engine's vectorised batch path over its slice of the
stream) and merges the per-worker sketches into one estimator whose
estimates are bit-identical to a single-process sharded run.  Chunks reach
the workers over one of two transports — per-worker shared-memory slot
rings (:mod:`repro.runtime.shm`, the default: one memcpy in, zero-copy
views out) or the original ``multiprocessing.Manager`` queues
(``transport="queue"``).  A worker crash aborts the run promptly with
:class:`WorkerIngestError` (worker id + remote traceback) instead of
blocking the coordinator on the bounded buffers.  Exposed through
``repro.cli run --workers N [--transport shm|queue]``, the
``parallel_ingest`` experiment and ``benchmarks/bench_parallel_ingest.py``.

:class:`IngestHandle` is the non-blocking counterpart for live serving: it
drives batches into a sink (typically a
:class:`~repro.monitor.spreader.SpreaderMonitor`) on a daemon thread under
a shared lock, so the query-serving layer (:mod:`repro.service`) can read
consistent state between batches without ever stalling ingest.
"""

from repro.runtime.handle import IngestHandle, batch_slices, ingest_handle_for_monitor
from repro.runtime.parallel import (
    QUEUE_DEPTH,
    TRANSPORTS,
    IngestReport,
    WorkerIngestError,
    owned_shards,
    parallel_ingest,
    worker_for_shards,
)

__all__ = [
    "IngestHandle",
    "IngestReport",
    "QUEUE_DEPTH",
    "TRANSPORTS",
    "WorkerIngestError",
    "batch_slices",
    "ingest_handle_for_monitor",
    "owned_shards",
    "parallel_ingest",
    "worker_for_shards",
]
