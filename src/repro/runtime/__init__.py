"""Parallel ingest runtime: multiprocess scale-out over sharded estimators.

:func:`parallel_ingest` partitions users across a pool of shard workers
(each replaying the engine's vectorised batch path over its slice of the
stream) and merges the per-worker sketches into one estimator whose
estimates are bit-identical to a single-process sharded run.  Exposed
through ``repro.cli run --workers N``, the ``parallel_ingest`` experiment
and ``benchmarks/bench_parallel_ingest.py``.
"""

from repro.runtime.parallel import (
    QUEUE_DEPTH,
    IngestReport,
    owned_shards,
    parallel_ingest,
    worker_for_shards,
)

__all__ = [
    "IngestReport",
    "QUEUE_DEPTH",
    "owned_shards",
    "parallel_ingest",
    "worker_for_shards",
]
