"""Non-blocking ingest: drive batches into a sink on a background thread.

The query-serving layer (:mod:`repro.service`) needs ingest that keeps
running while thousands of readers are answered.  :class:`IngestHandle`
owns that seam: a daemon thread feeds ``(pairs, timestamps)`` batches to a
sink callable, mutating shared state only while holding :attr:`lock`, so a
reader that takes the same lock between batches always sees a consistent
monitor.  Errors raised by the sink (or the batch source) are captured and
re-raised on :meth:`join` / :meth:`raise_if_failed` instead of dying
silently on the thread; :meth:`stop` is cooperative and takes effect at the
next batch boundary.

Throttling happens *outside* the lock: a rate-limited replay must not hold
the monitor lock while sleeping, or every sliding-window query would stall
behind the pacing sleep rather than behind real work.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence

import threading
import time

from repro import obs

UserItemPair = tuple[object, object]

_log = obs.get_logger("runtime.ingest")

#: One ingest batch: the pairs plus their (optional) arrival timestamps.
IngestBatch = tuple[Sequence[UserItemPair], Sequence[float] | None]


def batch_slices(
    pairs: Sequence[UserItemPair],
    timestamps: Sequence[float] | None = None,
    batch_size: int = 2048,
) -> Iterator[IngestBatch]:
    """Slice a materialised stream into ``(pairs, timestamps)`` ingest batches."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if timestamps is not None and len(timestamps) != len(pairs):
        raise ValueError("timestamps must have one entry per pair")
    for start in range(0, len(pairs), batch_size):
        chunk = pairs[start : start + batch_size]
        times = None if timestamps is None else timestamps[start : start + batch_size]
        yield chunk, times


class IngestHandle:
    """Feed batches to a sink on a daemon thread, under a shared lock.

    Parameters
    ----------
    batches:
        Iterable of ``(pairs, timestamps)`` batches (see :func:`batch_slices`).
    sink:
        Called with each batch's ``(pairs, timestamps)`` while :attr:`lock`
        is held — typically ``SpreaderMonitor.observe``.
    lock:
        The mutual-exclusion lock between ingest and state readers; a fresh
        ``threading.Lock`` when omitted.  Exposed so readers can hold it for
        consistent multi-step reads.
    on_batch:
        Optional callback fired after each batch **still under the lock** —
        the service layer refreshes its read snapshot here, guaranteeing the
        exported state is a batch-boundary state.
    rate:
        Optional throttle in pairs per second, slept off outside the lock.
    """

    def __init__(
        self,
        batches: Iterable[IngestBatch],
        sink: Callable[[Sequence[UserItemPair], Sequence[float] | None], object],
        lock: threading.Lock | None = None,
        on_batch: Callable[[int], None] | None = None,
        rate: float | None = None,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None for full speed)")
        self._batches = iter(batches)
        self._sink = sink
        self.lock = lock if lock is not None else threading.Lock()
        self._on_batch = on_batch
        self._rate = rate
        self._stop = threading.Event()
        self._finished = threading.Event()
        self._error: BaseException | None = None
        # Ingest progress lives in the metrics registry (always-on: the
        # service's refresh cadence and ``describe()`` depend on it, so
        # disabling telemetry must not change it).  The registry is
        # process-global; per-handle counts are deltas from the values
        # captured here.
        self._batches_counter = obs.counter("ingest.background.batches", always=True)
        self._pairs_counter = obs.counter("ingest.background.pairs", always=True)
        self._batches_base = self._batches_counter.value
        self._pairs_base = self._pairs_counter.value
        self._batch_seconds = obs.histogram("ingest.background.batch_seconds")
        self._started_at: float | None = None
        self._final_elapsed: float | None = None
        self._thread = threading.Thread(target=self._run, name="repro-ingest", daemon=True)
        self._started = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> IngestHandle:
        """Start the ingest thread (idempotent); return self for chaining."""
        if not self._started:
            self._started = True
            self._thread.start()
        return self

    def _run(self) -> None:
        active = obs.gauge("ingest.background.active")
        active.add(1)
        self._started_at = time.perf_counter()
        try:
            for pairs, timestamps in self._batches:
                if self._stop.is_set():
                    break
                with self.lock, obs.timed(self._batch_seconds):
                    self._sink(pairs, timestamps)
                    self._batches_counter.add()
                    self._pairs_counter.add(len(pairs))
                    if self._on_batch is not None:
                        self._on_batch(self.batches_done)
                if self._rate is not None:
                    time.sleep(len(pairs) / self._rate)
        except BaseException as error:  # surfaced via join()/raise_if_failed()
            self._error = error
            _log.error(
                "background_ingest_failed",
                error=repr(error),
                batches_done=self.batches_done,
                pairs_done=self.pairs_done,
            )
        finally:
            self._final_elapsed = time.perf_counter() - self._started_at
            active.add(-1)
            self._finished.set()

    def stop(self) -> None:
        """Request a cooperative stop at the next batch boundary."""
        self._stop.set()

    def join(self, timeout: float | None = None) -> bool:
        """Wait for the ingest thread; re-raise its error; True when finished."""
        if self._started:
            self._thread.join(timeout)
        self.raise_if_failed()
        return self.finished

    def raise_if_failed(self) -> None:
        """Re-raise the ingest thread's captured exception, if any."""
        if self._error is not None:
            raise RuntimeError("background ingest failed") from self._error

    # -- introspection ---------------------------------------------------------

    @property
    def running(self) -> bool:
        """True while the ingest thread is alive and not finished."""
        return self._started and not self._finished.is_set()

    @property
    def finished(self) -> bool:
        """True once the batch source is exhausted, stopped, or failed."""
        return self._finished.is_set()

    @property
    def error(self) -> BaseException | None:
        """The captured ingest error (None while healthy)."""
        return self._error

    @property
    def batches_done(self) -> int:
        """Batches fully ingested so far (by this handle)."""
        return int(self._batches_counter.value - self._batches_base)

    @property
    def pairs_done(self) -> int:
        """Pairs fully ingested so far (by this handle)."""
        return int(self._pairs_counter.value - self._pairs_base)

    def _elapsed_seconds(self) -> float | None:
        """Ingest wall-clock: live while running, frozen once finished.

        Frozen so two ``stats`` responses from a finished server are
        bit-identical — the transport-identity contract extends into the
        embedded ingest description.
        """
        if self._started_at is None:
            return None
        if self._final_elapsed is not None:
            return self._final_elapsed
        return time.perf_counter() - self._started_at

    def describe(self) -> dict:
        """JSON-ready ingest state (embedded in the service's ``stats`` op)."""
        elapsed = self._elapsed_seconds()
        pairs_done = self.pairs_done
        return {
            "running": self.running,
            "finished": self.finished,
            "batches_done": self.batches_done,
            "pairs_done": pairs_done,
            "elapsed_seconds": elapsed,
            "pairs_per_second": (
                pairs_done / elapsed if elapsed and elapsed > 0 else None
            ),
            "error": None if self._error is None else repr(self._error),
        }


def ingest_handle_for_monitor(
    monitor,
    pairs: Sequence[UserItemPair],
    timestamps: Sequence[float] | None = None,
    batch_size: int = 2048,
    rate: float | None = None,
    on_batch: Callable[[int], None] | None = None,
    lock: threading.Lock | None = None,
) -> IngestHandle:
    """Build (without starting) a handle replaying a stream into a monitor."""
    batches: list[IngestBatch] = list(batch_slices(pairs, timestamps, batch_size))

    def sink(batch_pairs, batch_times):
        monitor.observe(batch_pairs, batch_times)

    return IngestHandle(batches, sink, lock=lock, on_batch=on_batch, rate=rate)
