"""Shared-memory chunk handoff for the parallel ingest runtime.

The Manager-queue transport of :mod:`repro.runtime.parallel` pays three
copies per routed chunk: pickle in the coordinator, a round-trip through
the manager's proxy process, unpickle in the worker.  For the dominant
chunk shape — two fixed-width integer arrays — all of that is avoidable:
this module gives each worker a fixed-slot ring in one
:class:`multiprocessing.shared_memory.SharedMemory` segment, and the
coordinator writes the arrays straight into a free slot (one ``memcpy``)
while the worker reads them back as zero-copy numpy views.

Layout and control flow:

* a worker's segment holds :data:`SLOTS_PER_WORKER` equal slots; slot 0
  starts at offset 0, each slot is ``slot header + payload``;
* slot availability travels through two tiny queues per worker — ``free``
  (worker → coordinator, pre-seeded with every slot id) and ``ready``
  (coordinator → worker: ``("slot", i)``, ``("inline", pickle)`` for
  payloads a slot cannot carry, or ``None`` as the end-of-stream
  sentinel).  Both queues only ever carry slot indices and rare pickles,
  so the bulk bytes never cross a pipe;
* the worker frees a slot only **after** ``update_encoded`` returns: the
  encode path may keep zero-copy views of the slot memory
  (``fold_key_array`` on ``uint64`` input), and freeing earlier would let
  the coordinator overwrite bytes still being read;
* results return on a third queue as ``("ok", state, stats)`` — the
  stats dict carries the worker's chunk/pair counts and encode/update
  timings for the coordinator's metrics registry — or
  ``("error", traceback, repr)``, which the coordinator turns into the
  same :class:`~repro.runtime.parallel.WorkerIngestError` the queue
  transport raises.

Backpressure is the ring itself: with every slot in flight the
coordinator blocks acquiring a free slot (polling worker liveness), which
is exactly the bounded-queue behaviour of the Manager path.  Items that
cannot be written raw (``object``-dtype ids, pre-encoded batches larger
than a slot) fall back to pickling — through the slot when they fit,
inline through the ready queue when they do not — so the transport never
constrains what the routing layer may send, and per-worker FIFO order
(the bit-identity prerequisite) is preserved by the single ready queue.
"""

from __future__ import annotations

import pickle
import struct
import sys
import time
import traceback
from multiprocessing import shared_memory

import numpy as np

from repro.engine.encoding import EncodedBatch
from repro.registry import build


def new_worker_stats() -> dict[str, float]:
    """A fresh per-worker stats accumulator (chunks, pairs, timings).

    Workers live in their own processes, where the coordinator's metrics
    registry is invisible — they count locally (a dict and a few
    ``perf_counter`` reads per *chunk*, negligible against thousands of
    pairs of work) and ship the totals home with their serialised state.
    """
    return {"chunks": 0, "pairs": 0, "encode_seconds": 0.0, "update_seconds": 0.0}


def ingest_item(estimator, item, stats: dict[str, float]) -> None:
    """Encode (if needed) and apply one routed chunk, accumulating stats.

    Shared by both transports' workers so the replay stays bit-identical
    and the timing split (encode vs update) is measured the same way.
    """
    if isinstance(item, EncodedBatch):
        batch = item
    else:
        started = time.perf_counter()
        batch = EncodedBatch.from_int_arrays(*item)
        stats["encode_seconds"] += time.perf_counter() - started
    started = time.perf_counter()
    estimator.update_encoded(batch)
    stats["update_seconds"] += time.perf_counter() - started
    stats["chunks"] += 1
    stats["pairs"] += len(batch)

#: Slots per worker ring — mirrors the Manager transport's QUEUE_DEPTH:
#: enough buffered chunks to keep a worker busy, small enough to bound the
#: coordinator's memory and keep the abort path prompt.
SLOTS_PER_WORKER = 4

#: Slot payload kinds.
KIND_RAW = 0  #: two fixed-width integer arrays written in place
KIND_PICKLED = 1  #: one pickle blob (EncodedBatch / object-dtype arrays)

#: Slot header: kind(u8), users dtype str(15s), items dtype str(15s),
#: users byte length (u64), items byte length (u64) — padded to 64 bytes so
#: payloads start at a cache-line boundary.
_SLOT_HEADER = struct.Struct("<B15s15sQQ")
SLOT_HEADER_BYTES = 64


def slot_size_for(chunk_pairs: int) -> int:
    """Slot bytes needed for a worst-case raw chunk of ``chunk_pairs`` pairs.

    The widest fixed-width integer dtype is 8 bytes, and a routed sub-chunk
    never exceeds the coordinator's chunk size, so ``2 * 8 * chunk_pairs``
    bounds the payload of the raw path (the pickled path falls back to the
    inline queue when it doesn't fit).
    """
    return SLOT_HEADER_BYTES + 16 * max(1, int(chunk_pairs))


def _dtype_token(dtype: np.dtype) -> bytes:
    token = np.dtype(dtype).str.encode("ascii")
    if len(token) > 15:  # pragma: no cover - no numpy int dtype is this long
        raise ValueError(f"dtype token {token!r} too long for the slot header")
    return token


class ShmRing:
    """Coordinator-side handle for one worker's shared-memory slot ring."""

    def __init__(self, context, slot_size: int, n_slots: int = SLOTS_PER_WORKER):
        self.slot_size = int(slot_size)
        self.n_slots = int(n_slots)
        self.shm = shared_memory.SharedMemory(
            create=True, size=self.slot_size * self.n_slots
        )
        #: Free slot ids, worker → coordinator (pre-seeded: all free).
        self.free = context.Queue()
        #: Work items, coordinator → worker; bounded so the rare inline
        #: pickles get the same backpressure as slot payloads.
        self.ready = context.Queue(maxsize=self.n_slots)
        #: ("ok", state) / ("error", traceback, repr), worker → coordinator.
        self.results = context.Queue()
        #: Result pulled early by a liveness probe, parked for collection.
        self.cached_result: tuple | None = None
        for slot in range(self.n_slots):
            self.free.put(slot)

    @property
    def capacity(self) -> int:
        """Payload bytes one slot can carry."""
        return self.slot_size - SLOT_HEADER_BYTES

    def write_raw(self, slot: int, users: np.ndarray, items: np.ndarray) -> None:
        """Write two fixed-width arrays into ``slot`` (one memcpy each)."""
        offset = slot * self.slot_size
        _SLOT_HEADER.pack_into(
            self.shm.buf,
            offset,
            KIND_RAW,
            _dtype_token(users.dtype),
            _dtype_token(items.dtype),
            users.nbytes,
            items.nbytes,
        )
        self._write_array(offset + SLOT_HEADER_BYTES, users)
        self._write_array(offset + SLOT_HEADER_BYTES + users.nbytes, items)

    def write_pickled(self, slot: int, blob: bytes) -> None:
        """Write one pre-pickled item into ``slot`` (must fit the capacity)."""
        if len(blob) > self.capacity:
            raise ValueError("pickle does not fit the slot; send it inline")
        offset = slot * self.slot_size
        _SLOT_HEADER.pack_into(
            self.shm.buf, offset, KIND_PICKLED, b"", b"", len(blob), 0
        )
        self.shm.buf[
            offset + SLOT_HEADER_BYTES : offset + SLOT_HEADER_BYTES + len(blob)
        ] = blob

    def _write_array(self, offset: int, array: np.ndarray) -> None:
        destination = np.ndarray(
            array.shape, dtype=array.dtype, buffer=self.shm.buf, offset=offset
        )
        destination[:] = array

    def close(self) -> None:
        """Release the coordinator's mapping (idempotent)."""
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - exported views still alive
            pass

    def unlink(self) -> None:
        """Destroy the segment (coordinator-only; idempotent)."""
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


def as_raw_arrays(item) -> tuple[np.ndarray, np.ndarray] | None:
    """The item as two fixed-width arrays, or None when not representable."""
    if (
        isinstance(item, tuple)
        and len(item) == 2
        and isinstance(item[0], np.ndarray)
        and isinstance(item[1], np.ndarray)
        and item[0].ndim == 1
        and item[1].ndim == 1
        and item[0].dtype.kind in "iu"
        and item[1].dtype.kind in "iu"
    ):
        return np.ascontiguousarray(item[0]), np.ascontiguousarray(item[1])
    return None


def read_slot(buf, slot: int, slot_size: int):
    """Decode one slot into the routed item (worker side).

    The raw path returns zero-copy views into the segment — the caller must
    not free the slot until it is completely done with them.
    """
    offset = slot * slot_size
    kind, users_token, items_token, users_bytes, items_bytes = _SLOT_HEADER.unpack_from(
        buf, offset
    )
    start = offset + SLOT_HEADER_BYTES
    if kind == KIND_PICKLED:
        return pickle.loads(bytes(buf[start : start + users_bytes]))
    users_dtype = np.dtype(users_token.rstrip(b"\x00").decode("ascii"))
    items_dtype = np.dtype(items_token.rstrip(b"\x00").decode("ascii"))
    users = np.frombuffer(
        buf, dtype=users_dtype, count=users_bytes // users_dtype.itemsize, offset=start
    )
    items = np.frombuffer(
        buf,
        dtype=items_dtype,
        count=items_bytes // items_dtype.itemsize,
        offset=start + users_bytes,
    )
    return users, items


def shm_worker(
    method: str,
    config,
    expected_users: int,
    shards: int,
    shm_name: str,
    slot_size: int,
    free_queue,
    ready_queue,
    result_queue,
) -> None:
    """Worker process body: replay slot/inline chunks, post serialised state.

    The estimator construction and the per-item replay are identical to the
    Manager-queue worker (:func:`repro.runtime.parallel._worker_ingest`), so
    the two transports produce bit-identical states.  Failures of any kind
    are posted as ``("error", traceback, repr)`` — the coordinator cannot
    see this process's exception directly (there is no Future here).
    """
    from repro.core import serialization

    # Attaching re-registers the segment with the (process-tree-wide)
    # resource tracker; the tracker's name cache is a set, so this collapses
    # with the coordinator's own registration and the coordinator's unlink
    # clears it — no worker-side bookkeeping needed.
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        estimator = build(method, config, expected_users, shards=shards)
        stats = new_worker_stats()
        while True:
            message = ready_queue.get()
            if message is None:
                break
            tag, value = message
            if tag == "inline":
                item = pickle.loads(value)
                slot = None
            else:
                slot = value
                item = read_slot(shm.buf, slot, slot_size)
            ingest_item(estimator, item, stats)
            # Drop every view of the slot *before* recycling it — the batch
            # may alias slot memory (zero-copy folds), and a freed slot is
            # the coordinator's to overwrite.
            del item
            if slot is not None:
                free_queue.put(slot)
        result_queue.put(("ok", serialization.dumps(estimator), stats))
    except BaseException as error:
        result_queue.put(("error", traceback.format_exc(), repr(error)))
        sys.exit(1)
    finally:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - views outlive the loop
            pass
