"""The asyncio query server: live estimates over NDJSON TCP.

Two layers:

* :class:`EstimateService` — transport-free request handling.  The hot ops
  (``spread`` / ``batch_spread`` / ``topk`` / ``stats``) answer from the
  monitor's immutable :class:`~repro.monitor.view.ReadSnapshot`, refreshed
  at batch boundaries by the ingest thread — readers never take a lock, so
  any number of concurrent queries cannot stall ingest.  The cold
  ``sliding`` op performs sketch merges, so it briefly holds the ingest
  lock and memoises closed-epoch prefixes in a
  :class:`~repro.monitor.view.SlidingMergeCache` (invalidated on epoch
  rotation).
* :class:`EstimateServer` — the asyncio TCP front end.  One task per
  connection, requests answered in order per connection; lock-taking ops
  run on the default executor so a long merge never blocks the event loop.

Ingest runs beside the server on a
:class:`~repro.runtime.handle.IngestHandle` daemon thread (the runtime's
non-blocking ingest seam), feeding the monitor batch by batch and
refreshing the service's snapshot every ``refresh_every`` batches — every
response is therefore a *consistent batch-boundary state*, stamped with its
version and ingest offset.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, Optional

from repro.monitor.spreader import SpreaderMonitor
from repro.monitor.view import ReadSnapshot, SlidingMergeCache, wire_user
from repro.service import protocol
from repro.service.ops import OPS
from repro.service.protocol import ProtocolError

#: Default TCP port (freesketch "FS" on a phone keypad, more or less).
DEFAULT_PORT = 7373


def _estimates_payload(estimates: Dict[object, float]) -> list:
    return [[wire_user(user), float(value)] for user, value in estimates.items()]


class EstimateService:
    """Request handling over a live monitor (transport-free, thread-safe)."""

    def __init__(
        self,
        monitor: SpreaderMonitor,
        lock: threading.Lock | None = None,
        ingest_handle=None,
    ) -> None:
        self._monitor = monitor
        #: Mutual exclusion between ingest and lock-taking readers; shared
        #: with the IngestHandle driving this monitor.
        self.lock = lock if lock is not None else threading.Lock()
        self._ingest_handle = ingest_handle
        self._sliding_cache = SlidingMergeCache()
        self._queries_served = 0
        with self.lock:
            self._snapshot = monitor.read_snapshot()

    # -- state ----------------------------------------------------------------

    @property
    def snapshot(self) -> ReadSnapshot:
        """The read snapshot answering the hot ops right now."""
        return self._snapshot

    @property
    def queries_served(self) -> int:
        """Requests answered since the service started."""
        return self._queries_served

    def attach_ingest(self, handle) -> None:
        """Attach the ingest handle once it exists (surfaced via ``stats``)."""
        self._ingest_handle = handle

    def refresh(self) -> ReadSnapshot:
        """Re-export the read snapshot; caller must hold :attr:`lock`.

        Designed as the :class:`~repro.runtime.handle.IngestHandle`'s
        ``on_batch`` callback, which fires under the lock — the exported
        state is always a batch-boundary state.
        """
        self._snapshot = self._monitor.read_snapshot()
        return self._snapshot

    # -- request handling ------------------------------------------------------

    def handle(self, request: Dict[str, object]) -> Dict[str, object]:
        """Answer one decoded request; always returns a response envelope."""
        request_id = request.get("id")
        op_name = request.get("op")
        spec = OPS.get(op_name) if isinstance(op_name, str) else None
        if spec is None:
            return protocol.error_response(
                request_id,
                protocol.UNKNOWN_OP,
                f"unknown op {op_name!r}; supported: {', '.join(OPS)}",
            )
        try:
            params = spec.extract_params(request)
            handler = getattr(self, f"_op_{spec.name}")
            snapshot, result = handler(params)
        except ProtocolError as error:
            return protocol.error_response(request_id, error.code, str(error))
        except Exception as error:  # pragma: no cover - defensive backstop
            return protocol.error_response(
                request_id, protocol.INTERNAL, f"{type(error).__name__}: {error}"
            )
        self._queries_served += 1
        return protocol.ok_response(
            request_id, snapshot.version, snapshot.pairs_ingested, result
        )

    # -- op implementations (return (answering snapshot, result dict)) --------

    def _op_spread(self, params):
        snapshot = self._snapshot
        user = params["user"]
        return snapshot, {"user": user, "estimate": snapshot.spread(user)}

    def _op_batch_spread(self, params):
        snapshot = self._snapshot
        users = params["users"]
        return snapshot, {"estimates": snapshot.batch_spread(users)}

    def _op_topk(self, params):
        snapshot = self._snapshot
        top = snapshot.topk(params["k"])
        return snapshot, {"top": [[wire_user(user), value] for user, value in top]}

    def _op_sliding(self, params):
        k_epochs = params["k_epochs"]
        with self.lock:
            # Stamp with a snapshot exported under the same lock as the
            # merge: with refresh_every > 1 the *published* snapshot may lag
            # the window state by several batches, and a stale stamp would
            # break the contract that (version, pairs_ingested) names the
            # exact state behind the answer.  The local export is not
            # published, so the hot ops keep their refresh cadence.
            snapshot = (
                self._snapshot
                if self._snapshot.version == self._monitor.version
                else self._monitor.read_snapshot()
            )
            estimates = self._sliding_cache.sliding_estimates(
                self._monitor.window, k_epochs
            )
        retained = len(snapshot.epoch_summaries)
        k = retained if k_epochs is None else min(k_epochs, retained)
        return snapshot, {
            "k_epochs": k,
            "exactness": snapshot.exactness,
            "estimates": _estimates_payload(estimates),
        }

    def _op_stats(self, params):
        snapshot = self._snapshot
        stats = snapshot.stats()
        stats["queries_served"] = self._queries_served
        stats["ops"] = [spec.describe() for spec in OPS.values()]
        if snapshot.method is not None:
            from repro.registry import REGISTRY

            stats["method_spec"] = REGISTRY[snapshot.method].describe()
        if self._ingest_handle is not None:
            stats["ingest"] = self._ingest_handle.describe()
        return snapshot, stats


class EstimateServer:
    """Asyncio TCP front end for an :class:`EstimateService`."""

    def __init__(
        self,
        service: EstimateService,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
    ) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self.connections_served = 0

    @property
    def port(self) -> int:
        """The actually bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "EstimateServer":
        """Bind and start accepting connections; returns self."""
        self._server = await asyncio.start_server(
            self._serve_connection,
            self.host,
            self._requested_port,
            limit=protocol.MAX_LINE_BYTES,
        )
        return self

    async def close(self) -> None:
        """Stop accepting connections and close the listening sockets."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        """Block serving connections until cancelled."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line exceeded the stream limit: report and drop the
                    # connection (mid-line resync is not possible).
                    writer.write(
                        protocol.encode(
                            protocol.error_response(
                                None,
                                protocol.BAD_REQUEST,
                                f"request line exceeds {protocol.MAX_LINE_BYTES} bytes",
                            )
                        )
                    )
                    break
                except ConnectionResetError:
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = protocol.decode_request(line)
                except ProtocolError as error:
                    response = protocol.error_response(None, error.code, str(error))
                else:
                    op = request.get("op")
                    spec = OPS.get(op) if isinstance(op, str) else None
                    if spec is not None and spec.needs_lock:
                        # Sketch merges block on the ingest lock: push them
                        # off the event loop so snapshot readers on other
                        # connections keep streaming answers meanwhile.
                        response = await loop.run_in_executor(
                            None, self.service.handle, request
                        )
                    else:
                        response = self.service.handle(request)
                payload = protocol.encode(response)
                if len(payload) > protocol.MAX_LINE_BYTES:
                    # The line cap is symmetric: a conforming client may
                    # reject any longer line, so never emit one — answer
                    # with a clean error the client can react to instead.
                    payload = protocol.encode(
                        protocol.error_response(
                            response.get("id"),
                            protocol.RESPONSE_TOO_LARGE,
                            f"response line would exceed {protocol.MAX_LINE_BYTES} "
                            "bytes; narrow the query (smaller k, fewer users, or "
                            "batch_spread in chunks)",
                        )
                    )
                writer.write(payload)
                try:
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
