"""The asyncio query server: live estimates over NDJSON TCP.

Two layers:

* :class:`EstimateService` — transport-free request handling.  The hot ops
  (``spread`` / ``batch_spread`` / ``topk`` / ``stats``) answer from the
  monitor's immutable :class:`~repro.monitor.view.ReadSnapshot`, refreshed
  at batch boundaries by the ingest thread — readers never take a lock, so
  any number of concurrent queries cannot stall ingest.  The cold
  ``sliding`` op performs sketch merges, so it briefly holds the ingest
  lock and memoises closed-epoch prefixes in a
  :class:`~repro.monitor.view.SlidingMergeCache` (invalidated on epoch
  rotation).
* :class:`EstimateServer` — the asyncio TCP front end.  One task per
  connection, requests answered in order per connection; lock-taking ops
  run on the default executor so a long merge never blocks the event loop.

Ingest runs beside the server on a
:class:`~repro.runtime.handle.IngestHandle` daemon thread (the runtime's
non-blocking ingest seam), feeding the monitor batch by batch and
refreshing the service's snapshot every ``refresh_every`` batches — every
response is therefore a *consistent batch-boundary state*, stamped with its
version and ingest offset.
"""

from __future__ import annotations

from collections.abc import Sequence

import asyncio
import threading

from repro import obs
from repro.monitor.spreader import SpreaderMonitor
from repro.monitor.view import ReadSnapshot, SlidingMergeCache, wire_user
from repro.service import frames, protocol
from repro.service.ops import OPS, OpSpec
from repro.service.protocol import ProtocolError

#: Default TCP port (freesketch "FS" on a phone keypad, more or less).
DEFAULT_PORT = 7373

#: Transports a server negotiates by default (NDJSON stays the opener).
DEFAULT_TRANSPORTS = (frames.TRANSPORT_NDJSON, frames.TRANSPORT_BINARY)

_log = obs.get_logger("service")

# Per-(labels) instrument caches: the registry's get-or-create is already a
# dict hit, but these skip the label sort on every request.
_REQUEST_COUNTERS: dict[tuple[str, str, bool], obs.Counter] = {}
_OP_SECONDS: dict[str, obs.Histogram] = {}
_BYTES_COUNTERS: dict[str, obs.Counter] = {}
_ERROR_COUNTERS: dict[str, obs.Counter] = {}


def _count_request(op: str, transport: str, ok: bool) -> None:
    key = (op, transport, ok)
    counter = _REQUEST_COUNTERS.get(key)
    if counter is None:
        counter = obs.counter(
            "service.requests",
            op=op,
            transport=transport,
            status="ok" if ok else "error",
        )
        _REQUEST_COUNTERS[key] = counter
    counter.add()


def _op_seconds(op: str) -> obs.Histogram:
    histogram = _OP_SECONDS.get(op)
    if histogram is None:
        histogram = obs.histogram("service.request_seconds", op=op)
        _OP_SECONDS[op] = histogram
    return histogram


def _count_response_bytes(transport: str, size: int) -> None:
    counter = _BYTES_COUNTERS.get(transport)
    if counter is None:
        counter = obs.counter("service.response_bytes", transport=transport)
        _BYTES_COUNTERS[transport] = counter
    counter.add(size)


def _count_error(code: str) -> None:
    counter = _ERROR_COUNTERS.get(code)
    if counter is None:
        counter = obs.counter("service.errors", code=code)
        _ERROR_COUNTERS[code] = counter
    counter.add()


def _estimates_payload(estimates: dict[object, float]) -> list:
    return [[wire_user(user), float(value)] for user, value in estimates.items()]


class EstimateService:
    """Request handling over a live monitor (transport-free, thread-safe)."""

    def __init__(
        self,
        monitor: SpreaderMonitor,
        lock: threading.Lock | None = None,
        ingest_handle=None,
    ) -> None:
        self._monitor = monitor
        #: Mutual exclusion between ingest and lock-taking readers; shared
        #: with the IngestHandle driving this monitor.
        self.lock = lock if lock is not None else threading.Lock()
        self._ingest_handle = ingest_handle
        self._sliding_cache = SlidingMergeCache()
        # Queries served lives in the metrics registry (always-on: ``stats``
        # reports it even with telemetry disabled).  The registry is
        # process-global, so per-instance counts are deltas from the value
        # captured here.
        self._queries = obs.counter("service.queries", always=True)
        self._queries_base = self._queries.value
        with self.lock:
            self._snapshot = monitor.read_snapshot()

    # -- state ----------------------------------------------------------------

    @property
    def snapshot(self) -> ReadSnapshot:
        """The read snapshot answering the hot ops right now."""
        return self._snapshot

    @property
    def queries_served(self) -> int:
        """Requests answered since the service started."""
        return int(self._queries.value - self._queries_base)

    def attach_ingest(self, handle) -> None:
        """Attach the ingest handle once it exists (surfaced via ``stats``)."""
        self._ingest_handle = handle

    def refresh(self) -> ReadSnapshot:
        """Re-export the read snapshot; caller must hold :attr:`lock`.

        Designed as the :class:`~repro.runtime.handle.IngestHandle`'s
        ``on_batch`` callback, which fires under the lock — the exported
        state is always a batch-boundary state.
        """
        self._snapshot = self._monitor.read_snapshot()  # repro-lint: disable=RL001(caller holds the lock: on_batch fires under it by the IngestHandle contract)
        return self._snapshot

    # -- request handling ------------------------------------------------------

    def handle(self, request: dict[str, object]) -> dict[str, object]:
        """Answer one decoded request; always returns a response envelope."""
        op_name = request.get("op")
        spec = OPS.get(op_name) if isinstance(op_name, str) else None
        # Unknown ops share one "unknown" latency series so a misbehaving
        # client cannot mint unbounded label values.
        with obs.timed(_op_seconds(spec.name if spec is not None else "unknown")):
            response = self._dispatch(request, spec)
        if response.get("ok"):
            self._queries.add()
        else:
            _count_error(response["error"]["code"])
        return response

    def _dispatch(
        self, request: dict[str, object], spec: OpSpec | None
    ) -> dict[str, object]:
        request_id = request.get("id")
        if spec is None:
            op_name = request.get("op")
            return protocol.error_response(
                request_id,
                protocol.UNKNOWN_OP,
                f"unknown op {op_name!r}; supported: {', '.join(OPS)}",
            )
        try:
            params = spec.extract_params(request)
            handler = getattr(self, f"_op_{spec.name}")
            snapshot, result = handler(params)
        except ProtocolError as error:
            return protocol.error_response(request_id, error.code, str(error))
        except Exception as error:  # pragma: no cover - defensive backstop
            return protocol.error_response(
                request_id, protocol.INTERNAL, f"{type(error).__name__}: {error}"
            )
        return protocol.ok_response(
            request_id, snapshot.version, snapshot.pairs_ingested, result
        )

    # -- op implementations (return (answering snapshot, result dict)) --------

    def _op_spread(self, params):
        snapshot = self._snapshot
        user = params["user"]
        return snapshot, {"user": user, "estimate": snapshot.spread(user)}

    def _op_batch_spread(self, params):
        snapshot = self._snapshot
        users = params["users"]
        return snapshot, {"estimates": snapshot.batch_spread(users)}

    def _op_topk(self, params):
        snapshot = self._snapshot
        top = snapshot.topk(params["k"])
        return snapshot, {"top": [[wire_user(user), value] for user, value in top]}

    def _op_sliding(self, params):
        k_epochs = params["k_epochs"]
        with self.lock:
            # Stamp with a snapshot exported under the same lock as the
            # merge: with refresh_every > 1 the *published* snapshot may lag
            # the window state by several batches, and a stale stamp would
            # break the contract that (version, pairs_ingested) names the
            # exact state behind the answer.  The local export is not
            # published, so the hot ops keep their refresh cadence.
            snapshot = (
                self._snapshot
                if self._snapshot.version == self._monitor.version
                else self._monitor.read_snapshot()
            )
            estimates = self._sliding_cache.sliding_estimates(
                self._monitor.window, k_epochs
            )
        retained = len(snapshot.epoch_summaries)
        k = retained if k_epochs is None else min(k_epochs, retained)
        return snapshot, {
            "k_epochs": k,
            "exactness": snapshot.exactness,
            "estimates": _estimates_payload(estimates),
        }

    def _op_metrics(self, params):
        snapshot = self._snapshot
        return snapshot, {
            "enabled": obs.REGISTRY.enabled,
            "metrics": obs.metrics_snapshot(),
        }

    def _op_stats(self, params):
        snapshot = self._snapshot
        stats = snapshot.stats()
        stats["queries_served"] = self.queries_served
        stats["ops"] = [spec.describe() for spec in OPS.values()]
        if snapshot.method is not None:
            from repro.registry import REGISTRY

            stats["method_spec"] = REGISTRY[snapshot.method].describe()
        if self._ingest_handle is not None:
            stats["ingest"] = self._ingest_handle.describe()
        return snapshot, stats


class _NdjsonCodec:
    """Per-connection NDJSON transport: one line per message."""

    name = frames.TRANSPORT_NDJSON

    async def read_request(self, reader: asyncio.StreamReader) -> dict | None:
        """One decoded request; None at EOF.  Raises :class:`ProtocolError`."""
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                # Line exceeded the stream limit: mid-line resync is not
                # possible, so the error is fatal for the connection.
                raise ProtocolError(
                    protocol.BAD_REQUEST,
                    f"request line exceeds {protocol.MAX_LINE_BYTES} bytes",
                    fatal=True,
                ) from None
            if not line:
                return None
            if not line.strip():
                continue
            return protocol.decode_request(line)

    def encode_response(self, response: dict, spec: OpSpec | None) -> bytes:
        payload = protocol.encode(response)
        if len(payload) > protocol.MAX_LINE_BYTES:
            # The line cap is symmetric: a conforming client may reject any
            # longer line, so never emit one — answer with a clean error the
            # client can react to instead.
            payload = protocol.encode(
                protocol.error_response(
                    response.get("id"),
                    protocol.RESPONSE_TOO_LARGE,
                    f"response line would exceed {protocol.MAX_LINE_BYTES} "
                    "bytes; narrow the query (smaller k, fewer users, or "
                    "batch_spread in chunks)",
                )
            )
        return payload


class _BinaryCodec:
    """Per-connection binary transport: length-prefixed frames."""

    name = frames.TRANSPORT_BINARY

    async def read_request(self, reader: asyncio.StreamReader) -> dict | None:
        try:
            header = await reader.readexactly(frames.FRAME_HEADER_BYTES)
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None
            raise ProtocolError(
                protocol.BAD_REQUEST, "connection closed mid frame header", fatal=True
            ) from None
        # Bad magic / version / over-cap length: recoverable — the reply
        # names the defect and the reader realigns at the next 8 bytes (the
        # declared payload of an over-cap frame is deliberately NOT read).
        length = frames.parse_frame_header(header)
        try:
            payload = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError(
                protocol.BAD_REQUEST, "connection closed mid frame payload", fatal=True
            ) from None
        return frames.decode_payload(payload)

    def encode_response(self, response: dict, spec: OpSpec | None) -> bytes:
        fields: tuple[frames.ArrayField, ...] = ()
        if spec is not None:
            fields = tuple(
                (("result", name), kind) for name, kind in spec.result_arrays
            )
        payload = frames.encode_frame(response, fields)
        if len(payload) > frames.MAX_FRAME_BYTES + frames.FRAME_HEADER_BYTES:
            payload = frames.encode_frame(
                protocol.error_response(
                    response.get("id"),
                    protocol.RESPONSE_TOO_LARGE,
                    f"response frame would exceed {frames.MAX_FRAME_BYTES} "
                    "bytes; narrow the query (smaller k, fewer users, or "
                    "batch_spread in chunks)",
                )
            )
        return payload


class EstimateServer:
    """Asyncio TCP front end for an :class:`EstimateService`.

    Every connection opens in NDJSON.  When ``transports`` includes
    ``"binary"`` (the default), a client may switch the connection to
    length-prefixed binary frames with a ``hello`` first line; pass
    ``transports=("ndjson",)`` to answer ``hello`` but never choose binary,
    or ``transports=None`` to disable negotiation entirely (``hello`` then
    falls through to the dispatcher as an unknown op, which is exactly how
    servers predating negotiation behave — the client fallback path).
    """

    def __init__(
        self,
        service: EstimateService,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        transports: Sequence[str] | None = DEFAULT_TRANSPORTS,
    ) -> None:
        self.service = service
        self.host = host
        self.transports = None if transports is None else tuple(transports)
        if self.transports is not None:
            unknown = set(self.transports) - set(DEFAULT_TRANSPORTS)
            if unknown:
                raise ValueError(f"unknown transports {sorted(unknown)}")
        self._requested_port = port
        self._server: asyncio.AbstractServer | None = None
        self.connections_served = 0

    @property
    def port(self) -> int:
        """The actually bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> EstimateServer:
        """Bind and start accepting connections; returns self."""
        self._server = await asyncio.start_server(
            self._serve_connection,
            self.host,
            self._requested_port,
            limit=protocol.MAX_LINE_BYTES,
        )
        return self

    async def close(self) -> None:
        """Stop accepting connections and close the listening sockets."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        """Block serving connections until cancelled."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    def _negotiate(self, request: dict) -> tuple[dict, str]:
        """Answer a ``hello``: pick a transport both sides speak."""
        offered = request.get("transports")
        if not isinstance(offered, list):
            offered = []
        chosen = frames.TRANSPORT_NDJSON
        if frames.TRANSPORT_BINARY in offered and frames.TRANSPORT_BINARY in (
            self.transports or ()
        ):
            chosen = frames.TRANSPORT_BINARY
        response = {
            "id": request.get("id"),
            "ok": True,
            "result": {
                "transport": chosen,
                "transports": list(self.transports or ()),
                "max_line_bytes": protocol.MAX_LINE_BYTES,
                "max_frame_bytes": frames.MAX_FRAME_BYTES,
            },
        }
        return response, chosen

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        obs.counter("service.connections").add()
        active = obs.gauge("service.connections.active")
        active.add(1)
        loop = asyncio.get_running_loop()
        codec = _NdjsonCodec()
        try:
            while True:
                try:
                    request = await codec.read_request(reader)
                except ProtocolError as error:
                    payload = codec.encode_response(
                        protocol.error_response(None, error.code, str(error)), None
                    )
                    _count_request("unknown", codec.name, False)
                    _count_response_bytes(codec.name, len(payload))
                    writer.write(payload)
                    if error.fatal:
                        break
                    try:
                        await writer.drain()
                    except (ConnectionResetError, BrokenPipeError):
                        break
                    continue
                except ConnectionResetError:
                    break
                if request is None:
                    break
                op = request.get("op")
                if self.transports is not None and op == frames.HELLO_OP:
                    # Connection-level negotiation: answered in the current
                    # codec, then both sides switch for everything after.
                    response, chosen = self._negotiate(request)
                    payload = codec.encode_response(response, None)
                    _count_request(frames.HELLO_OP, codec.name, True)
                    _count_response_bytes(codec.name, len(payload))
                    writer.write(payload)
                    try:
                        await writer.drain()
                    except (ConnectionResetError, BrokenPipeError):
                        break
                    if chosen == frames.TRANSPORT_BINARY and codec.name != chosen:
                        codec = _BinaryCodec()
                    continue
                spec = OPS.get(op) if isinstance(op, str) else None
                if spec is not None and spec.needs_lock:
                    # Sketch merges block on the ingest lock: push them
                    # off the event loop so snapshot readers on other
                    # connections keep streaming answers meanwhile.
                    response = await loop.run_in_executor(
                        None, self.service.handle, request
                    )
                else:
                    response = self.service.handle(request)
                payload = codec.encode_response(response, spec)
                _count_request(
                    spec.name if spec is not None else "unknown",
                    codec.name,
                    bool(response.get("ok")),
                )
                _count_response_bytes(codec.name, len(payload))
                writer.write(payload)
                try:
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    break
        finally:
            active.add(-1)
            writer.close()
            try:
                await asyncio.shield(writer.wait_closed())
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
