"""A small synchronous client for the estimate-serving protocol.

One TCP connection, blocking request/response in order — the shape an
operator script or a smoke test wants.  Every convenience method returns
the parsed result; the full envelope of the most recent exchange (with its
``version`` and ``pairs_ingested`` consistency stamp) stays available as
:attr:`ServiceClient.last_response`, which is how the CI smoke correlates a
mid-ingest answer with the exact monitor state that produced it.

The client speaks both transports.  ``transport="ndjson"`` (the default)
keeps every exchange as one JSON line.  ``transport="binary"`` negotiates
the length-prefixed frames of :mod:`repro.service.frames` — raw numpy
buffers for the big arrays — and raises when the server can't provide
them; ``transport="auto"`` tries binary and silently stays on NDJSON when
the server declines or predates negotiation (``unknown_op`` on hello).
"""

from __future__ import annotations

from collections.abc import Sequence

import json
import socket

import numpy as np

from repro.service import frames, protocol
from repro.service.ops import OPS
from repro.service.server import DEFAULT_PORT

#: Ceiling on one response line (64 MiB).  Responses are not bounded by the
#: request-side MAX_LINE_BYTES — a ``sliding`` reply enumerates every
#: tracked user — so the client accumulates chunks up to this cap instead
#: of truncating (a truncated line would desync the whole connection).
MAX_RESPONSE_BYTES = 64 << 20

#: Bytes requested per buffered read while assembling one response line.
_READ_CHUNK_BYTES = 1 << 20

#: Recursion bound for the response_too_large auto-chunking of
#: ``batch_spread`` (2**20 chunks is far beyond any real split).
_MAX_SPLIT_DEPTH = 20


class ServiceError(RuntimeError):
    """The server answered with an error envelope."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


def _json_default(value: object) -> object:
    """Make numpy inputs (arrays, scalars) JSON-encodable on the NDJSON path."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError(f"cannot serialise {type(value).__name__} for the wire")


class ServiceClient:
    """Blocking client for both transports; usable as a context manager."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 10.0,
        transport: str = frames.TRANSPORT_NDJSON,
    ) -> None:
        if transport not in (frames.TRANSPORT_NDJSON, frames.TRANSPORT_BINARY, "auto"):
            raise ValueError(
                f"transport must be 'ndjson', 'binary' or 'auto', not {transport!r}"
            )
        self.host = host
        self.port = port
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._socket.makefile("rb")
        self._next_id = 0
        #: Full envelope of the most recent successful exchange.
        self.last_response: dict[str, object] | None = None
        #: The transport this connection actually speaks after negotiation.
        self.transport = frames.TRANSPORT_NDJSON
        if transport != frames.TRANSPORT_NDJSON:
            try:
                self.transport = self._negotiate(transport)
            except BaseException:
                self.close()
                raise

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._reader.close()
        finally:
            self._socket.close()

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- transport negotiation -------------------------------------------------

    def _negotiate(self, requested: str) -> str:
        """Run the hello exchange; return the transport both sides settled on.

        Always spoken in NDJSON (every connection starts there).  A server
        that predates negotiation answers ``unknown_op``: fatal for a forced
        ``"binary"`` client, the stay-on-NDJSON signal for ``"auto"``.
        """
        try:
            response = self.request(
                frames.HELLO_OP, transports=[frames.TRANSPORT_BINARY]
            )
        except ServiceError as error:
            if error.code == protocol.UNKNOWN_OP:
                if requested == "auto":
                    return frames.TRANSPORT_NDJSON
                raise ServiceError(
                    "binary_unavailable",
                    "server predates transport negotiation (hello is unknown_op)",
                ) from error
            raise
        result = response.get("result")
        chosen = (result or {}).get("transport") if isinstance(result, dict) else None
        if chosen == frames.TRANSPORT_BINARY:
            return frames.TRANSPORT_BINARY
        if requested == frames.TRANSPORT_BINARY:
            raise ServiceError(
                "binary_unavailable",
                f"server selected transport {chosen!r} instead of binary",
            )
        return frames.TRANSPORT_NDJSON

    # -- request plumbing ------------------------------------------------------

    def request(self, op: str, **params: object) -> dict[str, object]:
        """Send one request; return the response envelope.

        Raises :class:`ServiceError` on an error envelope and
        ``ConnectionError`` when the server goes away mid-exchange.
        """
        self._next_id += 1
        request_id = self._next_id
        payload = {"id": request_id, "op": op, **params}
        if self.transport == frames.TRANSPORT_BINARY:
            spec = OPS.get(op)
            fields = (
                tuple(((name,), kind) for name, kind in spec.request_arrays)
                if spec is not None
                else ()
            )
            self._socket.sendall(frames.encode_frame(payload, fields))
            response = frames.read_frame(self._reader)
            if response is None:
                raise ConnectionError("server closed the connection")
        else:
            self._socket.sendall(
                (json.dumps(payload, default=_json_default) + "\n").encode("utf-8")
            )
            line = self._read_line()
            if not line:
                raise ConnectionError("server closed the connection")
            response = json.loads(line.decode("utf-8"))
        if response.get("id") not in (request_id, None):
            raise ConnectionError(
                f"response id {response.get('id')!r} does not match request {request_id}"
            )
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(
                str(error.get("code", "unknown")), str(error.get("message", ""))
            )
        self.last_response = response
        return response

    def _read_line(self) -> bytes:
        """Read one full response line, however long (up to the ceiling).

        A buffered ``readline(n)`` returns a partial line only when it hits
        ``n``, so long lines arrive as full-sized newline-less chunks that
        must be reassembled — truncating instead would feed half a JSON
        document to the parser and desync every later exchange.
        """
        chunks = []
        total = 0
        while True:
            budget = MAX_RESPONSE_BYTES - total
            if budget <= 0:
                raise ConnectionError(
                    f"response line exceeds {MAX_RESPONSE_BYTES} bytes"
                )
            chunk = self._reader.readline(min(budget, _READ_CHUNK_BYTES))
            if not chunk:  # EOF mid-line or before any data
                break
            chunks.append(chunk)
            total += len(chunk)
            if chunk.endswith(b"\n"):
                break
        return b"".join(chunks)

    @property
    def last_version(self) -> int | None:
        """Version stamp of the most recent successful response."""
        if self.last_response is None:
            return None
        return self.last_response.get("version")

    @property
    def last_pairs_ingested(self) -> int | None:
        """Ingest offset stamp of the most recent successful response."""
        if self.last_response is None:
            return None
        return self.last_response.get("pairs_ingested")

    # -- query ops -------------------------------------------------------------

    def spread(self, user: object) -> float:
        """One user's sliding-window spread estimate."""
        return float(self.request("spread", user=user)["result"]["estimate"])

    def batch_spread(self, users: Sequence[object]) -> list[float]:
        """Estimates for many users, in input order.

        When the whole answer would blow the transport's size cap the server
        answers ``response_too_large``; instead of surfacing that, the list
        is split in halves (recursively, bounded) and the chunk answers are
        reassembled in input order.  A stitched exchange leaves a synthetic
        envelope in :attr:`last_response` carrying every chunk's consistency
        stamp under ``"stitched"`` — the stamps may differ when ingest
        advanced between chunks, and hiding that would falsify the
        version/offset correlation the stamps exist for.
        """
        if not isinstance(users, (list, np.ndarray)):
            users = list(users)
        estimates, stamps = self._batch_spread(users, 0)
        if len(stamps) > 1:
            version, pairs_ingested = stamps[-1]
            self.last_response = {
                "id": None,
                "ok": True,
                "version": version,
                "pairs_ingested": pairs_ingested,
                "result": {"estimates": estimates},
                "stitched": {
                    "chunks": len(stamps),
                    "stamps": [list(stamp) for stamp in stamps],
                },
            }
        return estimates

    def _batch_spread(
        self, users: Sequence[object], depth: int
    ) -> tuple[list[float], list[tuple[object, object]]]:
        try:
            response = self.request("batch_spread", users=users)
        except ServiceError as error:
            if (
                error.code != protocol.RESPONSE_TOO_LARGE
                or len(users) <= 1
                or depth >= _MAX_SPLIT_DEPTH
            ):
                raise
            mid = len(users) // 2
            left, left_stamps = self._batch_spread(users[:mid], depth + 1)
            right, right_stamps = self._batch_spread(users[mid:], depth + 1)
            return left + right, left_stamps + right_stamps
        estimates = [float(value) for value in response["result"]["estimates"]]
        stamp = (response.get("version"), response.get("pairs_ingested"))
        return estimates, [stamp]

    def topk(self, k: int = 10) -> list[tuple[object, float]]:
        """The sliding window's top-k (user, estimate) ranking."""
        result = self.request("topk", k=k)["result"]
        return [(user, float(value)) for user, value in result["top"]]

    def sliding(self, k_epochs: int | None = None) -> dict[object, float]:
        """Merged estimates over the last ``k_epochs`` epochs (None = all)."""
        params = {} if k_epochs is None else {"k_epochs": k_epochs}
        result = self.request("sliding", **params)["result"]
        return {user: float(value) for user, value in result["estimates"]}

    def stats(self) -> dict[str, object]:
        """Server-side monitor state, ingest progress and the op table."""
        return self.request("stats")["result"]

    def metrics(self) -> list[dict[str, object]]:
        """The server's live telemetry snapshot (list of instrument dicts)."""
        return self.request("metrics")["result"]["metrics"]
