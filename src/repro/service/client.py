"""A small synchronous client for the estimate-serving protocol.

One TCP connection, blocking request/response in order — the shape an
operator script or a smoke test wants.  Every convenience method returns
the parsed result; the full envelope of the most recent exchange (with its
``version`` and ``pairs_ingested`` consistency stamp) stays available as
:attr:`ServiceClient.last_response`, which is how the CI smoke correlates a
mid-ingest answer with the exact monitor state that produced it.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Optional, Sequence, Tuple

from repro.service.server import DEFAULT_PORT

#: Ceiling on one response line (64 MiB).  Responses are not bounded by the
#: request-side MAX_LINE_BYTES — a ``sliding`` reply enumerates every
#: tracked user — so the client accumulates chunks up to this cap instead
#: of truncating (a truncated line would desync the whole connection).
MAX_RESPONSE_BYTES = 64 << 20

#: Bytes requested per buffered read while assembling one response line.
_READ_CHUNK_BYTES = 1 << 20


class ServiceError(RuntimeError):
    """The server answered with an error envelope."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class ServiceClient:
    """Blocking NDJSON client; usable as a context manager."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = DEFAULT_PORT, timeout: float = 10.0
    ) -> None:
        self.host = host
        self.port = port
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._socket.makefile("rb")
        self._next_id = 0
        #: Full envelope of the most recent successful exchange.
        self.last_response: Optional[Dict[str, object]] = None

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._reader.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- request plumbing ------------------------------------------------------

    def request(self, op: str, **params: object) -> Dict[str, object]:
        """Send one request; return the response envelope.

        Raises :class:`ServiceError` on an error envelope and
        ``ConnectionError`` when the server goes away mid-exchange.
        """
        self._next_id += 1
        request_id = self._next_id
        payload = {"id": request_id, "op": op, **params}
        self._socket.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        line = self._read_line()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line.decode("utf-8"))
        if response.get("id") not in (request_id, None):
            raise ConnectionError(
                f"response id {response.get('id')!r} does not match request {request_id}"
            )
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(
                str(error.get("code", "unknown")), str(error.get("message", ""))
            )
        self.last_response = response
        return response

    def _read_line(self) -> bytes:
        """Read one full response line, however long (up to the ceiling).

        A buffered ``readline(n)`` returns a partial line only when it hits
        ``n``, so long lines arrive as full-sized newline-less chunks that
        must be reassembled — truncating instead would feed half a JSON
        document to the parser and desync every later exchange.
        """
        chunks = []
        total = 0
        while True:
            budget = MAX_RESPONSE_BYTES - total
            if budget <= 0:
                raise ConnectionError(
                    f"response line exceeds {MAX_RESPONSE_BYTES} bytes"
                )
            chunk = self._reader.readline(min(budget, _READ_CHUNK_BYTES))
            if not chunk:  # EOF mid-line or before any data
                break
            chunks.append(chunk)
            total += len(chunk)
            if chunk.endswith(b"\n"):
                break
        return b"".join(chunks)

    @property
    def last_version(self) -> Optional[int]:
        """Version stamp of the most recent successful response."""
        if self.last_response is None:
            return None
        return self.last_response.get("version")

    @property
    def last_pairs_ingested(self) -> Optional[int]:
        """Ingest offset stamp of the most recent successful response."""
        if self.last_response is None:
            return None
        return self.last_response.get("pairs_ingested")

    # -- query ops -------------------------------------------------------------

    def spread(self, user: object) -> float:
        """One user's sliding-window spread estimate."""
        return float(self.request("spread", user=user)["result"]["estimate"])

    def batch_spread(self, users: Sequence[object]) -> List[float]:
        """Estimates for many users, in input order."""
        return [
            float(value)
            for value in self.request("batch_spread", users=list(users))["result"][
                "estimates"
            ]
        ]

    def topk(self, k: int = 10) -> List[Tuple[object, float]]:
        """The sliding window's top-k (user, estimate) ranking."""
        result = self.request("topk", k=k)["result"]
        return [(user, float(value)) for user, value in result["top"]]

    def sliding(self, k_epochs: int | None = None) -> Dict[object, float]:
        """Merged estimates over the last ``k_epochs`` epochs (None = all)."""
        params = {} if k_epochs is None else {"k_epochs": k_epochs}
        result = self.request("sliding", **params)["result"]
        return {user: float(value) for user, value in result["estimates"]}

    def stats(self) -> Dict[str, object]:
        """Server-side monitor state, ingest progress and the op table."""
        return self.request("stats")["result"]
