"""Async estimate-serving subsystem: query a live monitor over TCP.

The missing piece between "a monitor runs in this process" and "an
operator asks questions while the stream is live".  A newline-delimited
JSON protocol (:mod:`repro.service.protocol`) exposes the monitor's
sliding-window state — ``spread`` / ``batch_spread`` / ``topk`` /
``sliding`` / ``stats``, described once in the op registry
(:mod:`repro.service.ops`) — over an asyncio TCP server
(:mod:`repro.service.server`).  Queries are answered from a versioned
:class:`~repro.monitor.view.ReadSnapshot` refreshed at ingest batch
boundaries, so concurrent readers never block ingest; every response is
stamped with the snapshot's version and ingest offset.

Entry points: ``repro.cli serve`` (turnkey), :func:`serve_monitor`
(programmatic orchestration), :class:`ServiceClient` (blocking client).
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.frames import (
    MAX_FRAME_BYTES,
    TRANSPORT_BINARY,
    TRANSPORT_NDJSON,
)
from repro.service.ops import OPS, OpSpec
from repro.service.protocol import MAX_LINE_BYTES, ProtocolError
from repro.service.run import serve_monitor
from repro.service.server import DEFAULT_PORT, EstimateServer, EstimateService

__all__ = [
    "DEFAULT_PORT",
    "EstimateServer",
    "EstimateService",
    "MAX_FRAME_BYTES",
    "MAX_LINE_BYTES",
    "OPS",
    "OpSpec",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "TRANSPORT_BINARY",
    "TRANSPORT_NDJSON",
    "serve_monitor",
]
