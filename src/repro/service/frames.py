"""Length-prefixed binary wire frames for the query service.

NDJSON (:mod:`repro.service.protocol`) stays the default transport — every
message human-typable via ``nc``, every response greppable — but its text
round-trip is the dominant cost of a large ``batch_spread`` answer: 10k
float estimates are ~200 KB of JSON to format on the server and parse on
the client, against 80 KB of raw ``float64`` that both sides could simply
copy.  This module provides the negotiated binary alternative:

.. code-block:: text

    frame   := magic(2) version(1) flags(1) payload_len(u32 LE) payload
    payload := header_len(u32 LE) header_json array_bytes...

The header is the usual request/response JSON object with the array-typed
fields *lifted out*: each lifted field is described by an entry in the
header's ``"arrays"`` list (field path, kind, element count) and its raw
little-endian buffer is appended after the header, in descriptor order.
Which fields are liftable is declared per operation in the op registry
(:attr:`repro.service.ops.OpSpec.request_arrays` /
:attr:`~repro.service.ops.OpSpec.result_arrays`); a field whose value does
not fit the declared kind (string user ids, ints beyond ``int64``) simply
stays in the JSON header, so the binary transport degrades gracefully
instead of constraining the data model.

Array kinds:

``ids``
    one ``int64`` buffer — a flat list of integer ids (``batch_spread``
    requests).  Decoded server-side to a numpy array, which the op
    validator accepts wholesale (integer dtype == every element already
    validated), skipping the per-element Python checks of the JSON path.
``floats``
    one ``float64`` buffer — a flat list of estimates.
``pairs``
    one ``int64`` + one ``float64`` buffer — a ``[[user, value], ...]``
    ranking (``topk`` / ``sliding`` results with all-integer users).

``float64`` round-trips exactly through both transports (compact JSON uses
``repr``-shortest floats), so binary and NDJSON answers are bit-identical —
asserted op by op in ``tests/test_transport.py``.

Negotiation: a connection starts in NDJSON.  A client that wants binary
sends ``{"op": "hello", "transports": ["binary"]}`` as its first line; the
server answers (still in NDJSON) with the transport it chose, and both
sides switch for every subsequent exchange.  A server that predates
negotiation answers ``unknown_op`` — the client's cue to stay on NDJSON.

Binary frames are exempt from :data:`~repro.service.protocol.MAX_LINE_BYTES`
(there are no lines to cap) and bounded by :data:`MAX_FRAME_BYTES` instead,
on both directions.
"""

from __future__ import annotations

from collections.abc import Sequence

import json
import struct
from typing import Any

import numpy as np

from repro.service.protocol import BAD_REQUEST, ProtocolError

#: First two bytes of every binary frame.
MAGIC = b"FS"
#: Frame-format version (bumped on incompatible layout changes).
FRAME_VERSION = 1
#: ``magic(2) version(1) flags(1) payload_len(u32 LE)``.
FRAME_HEADER = struct.Struct("<2sBBI")
#: Bytes of the fixed frame header.
FRAME_HEADER_BYTES = FRAME_HEADER.size
#: Upper bound on one frame's payload (64 MiB).  The binary transport has
#: no line framing, so MAX_LINE_BYTES does not apply; this is its own cap,
#: sized for ~4M-user batch answers while still bounding a garbage client.
MAX_FRAME_BYTES = 64 << 20

#: Transport names used in negotiation.
TRANSPORT_NDJSON = "ndjson"
TRANSPORT_BINARY = "binary"
#: The negotiation pseudo-op (connection-level, not in the op registry).
HELLO_OP = "hello"

#: A field path into a message: ("users",) or ("result", "estimates").
FieldPath = tuple[str, ...]
#: Lift plan entry: (path, kind).
ArrayField = tuple[FieldPath, str]

_KIND_DTYPES: dict[str, tuple[np.dtype, ...]] = {
    "ids": (np.dtype("<i8"),),
    "floats": (np.dtype("<f8"),),
    "pairs": (np.dtype("<i8"), np.dtype("<f8")),
}


def _get_path(message: dict[str, Any], path: FieldPath) -> Any:
    node = message
    for part in path:
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _set_path(message: dict[str, Any], path: FieldPath, value: object) -> None:
    node = message
    for part in path[:-1]:
        child = node.get(part)
        if not isinstance(child, dict):
            raise ProtocolError(
                BAD_REQUEST, f"frame header lacks container {'.'.join(path[:-1])!r}"
            )
        node = child
    node[path[-1]] = value


def _without_lifted(
    message: dict[str, Any], paths: Sequence[FieldPath]
) -> dict[str, Any]:
    """Copy ``message`` minus the lifted fields, without touching their values.

    Only the dicts *along* each lifted path are (shallow-)copied — the big
    array values themselves are never traversed or serialised, which is the
    whole point of lifting them.
    """
    message = dict(message)
    for path in paths:
        node = message
        for part in path[:-1]:
            node[part] = dict(node[part])
            node = node[part]
        node.pop(path[-1], None)
    return message


def _lift_value(value: object, kind: str) -> list[np.ndarray] | None:
    """Convert ``value`` to the kind's buffers, or None when it doesn't fit.

    Lossless or not at all: values that would coerce (bools, floats,
    strings, ints beyond ``int64``) are left in the JSON header, so the
    binary transport never changes what the other side observes.
    """
    try:
        if kind == "ids":
            array = np.asarray(value)
            if array.ndim != 1 or array.dtype.kind != "i":
                return None
            return [array.astype("<i8", copy=False)]
        if kind == "floats":
            array = np.asarray(value)
            if array.ndim != 1 or array.dtype.kind != "f":
                return None
            return [array.astype("<f8", copy=False)]
        if kind == "pairs":
            if not isinstance(value, (list, tuple)) or not value:
                return None
            users = np.asarray([pair[0] for pair in value])
            if users.ndim != 1 or users.dtype.kind != "i":
                return None
            values = np.asarray([float(pair[1]) for pair in value], dtype="<f8")
            return [users.astype("<i8", copy=False), values]
    except (ValueError, TypeError, OverflowError, IndexError):
        return None
    return None


def _rebuild_value(kind: str, buffers: list[np.ndarray]) -> object:
    if kind == "ids":
        # Returned as the array itself: the op validator accepts integer
        # numpy arrays wholesale (the dtype already proves every element).
        return buffers[0]
    if kind == "floats":
        return buffers[0].tolist()
    # pairs
    return [[user, value] for user, value in zip(buffers[0].tolist(), buffers[1].tolist())]


def encode_frame(message: dict[str, object], fields: Sequence[ArrayField] = ()) -> bytes:
    """Serialise one message to a binary frame, lifting ``fields`` out.

    ``fields`` is the op's lift plan (paths + kinds); fields that are
    missing or don't fit their kind stay in the JSON header.
    """
    descriptors: list[list[object]] = []
    buffers: list[np.ndarray] = []
    lifted_paths: list[FieldPath] = []
    for path, kind in fields:
        value = _get_path(message, path)
        if value is None:
            continue
        lifted = _lift_value(value, kind)
        if lifted is None:
            continue
        descriptors.append([list(path), kind, int(lifted[0].shape[0])])
        buffers.extend(lifted)
        lifted_paths.append(path)
    if lifted_paths:
        message = _without_lifted(message, lifted_paths)
    header = json.dumps(
        {"msg": message, "arrays": descriptors}, separators=(",", ":")
    ).encode("utf-8")
    parts = [struct.pack("<I", len(header)), header]
    parts.extend(np.ascontiguousarray(buffer).tobytes() for buffer in buffers)
    payload = b"".join(parts)
    return FRAME_HEADER.pack(MAGIC, FRAME_VERSION, 0, len(payload)) + payload


def parse_frame_header(header: bytes) -> int:
    """Validate the 8-byte frame header; return the payload length.

    Raises :class:`ProtocolError` on bad magic, unknown version, or a
    declared length over :data:`MAX_FRAME_BYTES`.
    """
    if len(header) != FRAME_HEADER_BYTES:
        raise ProtocolError(BAD_REQUEST, "truncated frame header")
    magic, version, _flags, length = FRAME_HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(BAD_REQUEST, f"bad frame magic {magic!r}")
    if version != FRAME_VERSION:
        raise ProtocolError(BAD_REQUEST, f"unsupported frame version {version}")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            BAD_REQUEST, f"frame payload of {length} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return int(length)


def decode_payload(payload: bytes) -> dict[str, object]:
    """Rebuild the message from one frame payload (header + buffers)."""
    if len(payload) < 4:
        raise ProtocolError(BAD_REQUEST, "frame payload shorter than its header length")
    (header_len,) = struct.unpack_from("<I", payload, 0)
    if 4 + header_len > len(payload):
        raise ProtocolError(BAD_REQUEST, "frame header length exceeds the payload")
    try:
        header = json.loads(payload[4 : 4 + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(BAD_REQUEST, f"frame header is not valid JSON: {error}") from error
    if not isinstance(header, dict) or not isinstance(header.get("msg"), dict):
        raise ProtocolError(BAD_REQUEST, "frame header must carry a 'msg' object")
    message = header["msg"]
    offset = 4 + header_len
    for descriptor in header.get("arrays", ()):
        try:
            path, kind, count = descriptor
            path = tuple(path)
            dtypes = _KIND_DTYPES[kind]
            count = int(count)
            if count < 0:
                raise ValueError("negative count")
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(BAD_REQUEST, f"bad frame array descriptor: {error}") from error
        buffers = []
        for dtype in dtypes:
            nbytes = count * dtype.itemsize
            if offset + nbytes > len(payload):
                raise ProtocolError(BAD_REQUEST, "frame arrays exceed the payload")
            buffers.append(np.frombuffer(payload, dtype=dtype, count=count, offset=offset))
            offset += nbytes
        _set_path(message, path, _rebuild_value(kind, buffers))
    return message


def read_frame(reader: Any) -> dict[str, object] | None:
    """Read one frame from a blocking binary file object (client side).

    Returns None at a clean EOF; raises ``ConnectionError`` on a truncated
    frame and :class:`ProtocolError` on a malformed one.
    """
    header = _read_exact(reader, FRAME_HEADER_BYTES)
    if header is None:
        return None
    if len(header) < FRAME_HEADER_BYTES:
        raise ConnectionError("connection closed mid frame header")
    length = parse_frame_header(header)
    payload = _read_exact(reader, length)
    if payload is None or len(payload) < length:
        raise ConnectionError("connection closed mid frame payload")
    return decode_payload(payload)


def _read_exact(reader: Any, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; None at clean EOF, short bytes mid-EOF."""
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = reader.read(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    if not chunks:
        return None if count > 0 else b""
    return b"".join(chunks)
