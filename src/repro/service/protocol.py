"""The wire protocol: newline-delimited JSON over a plain TCP stream.

One request per line, one response per line, in order.  A request is a JSON
object with an ``op`` field naming the operation (see
:mod:`repro.service.ops`), an optional ``id`` echoed back verbatim, and the
op's parameters as top-level fields:

.. code-block:: json

    {"id": 7, "op": "batch_spread", "users": [3, 19, "alice"]}

Responses carry the answer plus the *consistency stamp* of the read
snapshot that produced it — the monitor state version and its ingest
offset — so a client can correlate concurrent answers with ingest
progress (and a smoke test can rebuild the exact state offline):

.. code-block:: json

    {"id": 7, "ok": true, "version": 42, "pairs_ingested": 86016,
     "result": {"estimates": [...]}}
    {"id": 8, "ok": false, "error": {"code": "unknown_op", "message": "..."}}

The framing is deliberately primitive — length-free, human-typable via
``nc``, debuggable with ``tee`` — matching the repository's JSONL feed
format.  Lines are capped at :data:`MAX_LINE_BYTES` to bound a hostile or
confused client's memory use.

NDJSON is the *default* transport, not the only one: a client can open
with a ``{"op": "hello", "transports": ["binary"]}`` line to switch the
connection to the length-prefixed binary frames of
:mod:`repro.service.frames`, which carry large ``batch_spread`` / ``topk``
/ ``sliding`` arrays as raw numpy buffers instead of JSON text (exempt
from the line cap, bounded by ``MAX_FRAME_BYTES`` instead).
"""

from __future__ import annotations

import json

#: Upper bound on one request/response line (1 MiB covers thousands of
#: users in one batch_spread while bounding a garbage client's damage).
MAX_LINE_BYTES = 1 << 20

#: Error codes emitted by the server (stable, part of the protocol).
BAD_REQUEST = "bad_request"
UNKNOWN_OP = "unknown_op"
INTERNAL = "internal"
#: The *response* would exceed :data:`MAX_LINE_BYTES`.  The line cap is
#: symmetric: a conforming client may reject any longer line, so instead of
#: emitting one the server answers with this error and the client should
#: narrow the query (smaller ``k``, fewer users, chunked ``batch_spread``).
RESPONSE_TOO_LARGE = "response_too_large"


class ProtocolError(ValueError):
    """A malformed request (not JSON, not an object, too long, bad frame).

    ``fatal`` marks errors after which the byte stream cannot be resynced
    (an NDJSON line over the stream limit was partially consumed, a binary
    frame was truncated by EOF): the server answers with the error envelope
    and then closes the connection instead of continuing.
    """

    def __init__(self, code: str, message: str, fatal: bool = False) -> None:
        super().__init__(message)
        self.code = code
        self.fatal = fatal


def encode(payload: dict[str, object]) -> bytes:
    """Serialise one message to its wire form (compact JSON + newline)."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_request(line: bytes) -> dict[str, object]:
    """Parse one request line; raise :class:`ProtocolError` when malformed."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(BAD_REQUEST, f"request line exceeds {MAX_LINE_BYTES} bytes")
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(BAD_REQUEST, f"request is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(BAD_REQUEST, "request must be a JSON object")
    return payload


def ok_response(
    request_id: object | None,
    version: int,
    pairs_ingested: int,
    result: dict[str, object],
) -> dict[str, object]:
    """Build a success envelope stamped with the answering snapshot's state."""
    response: dict[str, object] = {
        "id": request_id,
        "ok": True,
        "version": version,
        "pairs_ingested": pairs_ingested,
        "result": result,
    }
    return response


def error_response(
    request_id: object | None, code: str, message: str
) -> dict[str, object]:
    """Build an error envelope (the connection stays usable afterwards)."""
    return {"id": request_id, "ok": False, "error": {"code": code, "message": message}}
