"""Orchestration: one call that wires monitor, ingest thread and server.

:func:`serve_monitor` is the programmatic face of ``repro.cli serve``: it
starts the asyncio TCP server over an :class:`EstimateService`, optionally
drives a recorded stream into the monitor on a background
:class:`~repro.runtime.handle.IngestHandle` (refreshing the read snapshot
every ``refresh_every`` batches, checkpointing every ``snapshot_every``
batches), announces readiness as a JSONL record on the feed callback, and
serves until cancelled.  After the stream is exhausted the server stays up
— a drained monitor is still queryable, which is also what the smoke test
relies on.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import asyncio

from repro import obs
from repro.monitor.snapshot import SnapshotStore
from repro.monitor.spreader import SpreaderMonitor
from repro.runtime.handle import ingest_handle_for_monitor
from repro.service.server import EstimateServer, EstimateService

UserItemPair = tuple[object, object]

#: Callback receiving JSONL-ready lifecycle records (serving, ingest end).
Announcer = Callable[[dict[str, object]], None]


def _null_announce(_record: dict[str, object]) -> None:
    return None


async def serve_monitor(
    monitor: SpreaderMonitor,
    pairs: Sequence[UserItemPair] | None = None,
    timestamps: Sequence[float] | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    batch_size: int = 2048,
    rate: float | None = None,
    refresh_every: int = 1,
    snapshot_store: SnapshotStore | None = None,
    snapshot_every: int = 0,
    announce: Announcer | None = None,
    ready: asyncio.Event | None = None,
    metrics_port: int | None = None,
) -> None:
    """Serve ``monitor`` over TCP, optionally ingesting ``pairs`` meanwhile.

    Runs until cancelled.  On cancellation the ingest thread is stopped, a
    final checkpoint is written when a ``snapshot_store`` is configured,
    and the server sockets are closed.  ``metrics_port`` (``0`` = any free
    port) additionally serves the Prometheus text exposition of the metrics
    registry on ``http://host:metrics_port/metrics``; the bound port rides
    in the ``serving`` announce record as ``metrics_port``.
    """
    if refresh_every <= 0:
        raise ValueError("refresh_every must be positive")
    if snapshot_every < 0:
        raise ValueError("snapshot_every must be non-negative")
    if snapshot_every and snapshot_store is None:
        raise ValueError("snapshot_every requires a snapshot_store")
    announce = announce or _null_announce

    service = EstimateService(monitor)
    handle = None
    # Ingest offset of the newest checkpoint written; a statically served
    # monitor (no stream) never changes, so its restored state counts as
    # already checkpointed.
    last_checkpoint = [monitor.window.pairs_ingested if pairs is None else -1]

    def checkpoint() -> None:
        """Save unless the current offset is already checkpointed."""
        if snapshot_store is None:
            return
        offset = monitor.window.pairs_ingested
        if offset != last_checkpoint[0]:
            snapshot_store.save(monitor)
            last_checkpoint[0] = offset

    if pairs is not None:
        skip = monitor.window.pairs_ingested  # resume offset of a restored monitor

        def on_batch(batches_done: int) -> None:
            # Runs on the ingest thread, under the service lock: the
            # exported snapshot is always a batch-boundary state.
            if batches_done % refresh_every == 0:
                service.refresh()
            if snapshot_every and batches_done % snapshot_every == 0:
                checkpoint()

        handle = ingest_handle_for_monitor(
            monitor,
            pairs[skip:],
            timestamps=None if timestamps is None else timestamps[skip:],
            batch_size=batch_size,
            rate=rate,
            on_batch=on_batch,
            lock=service.lock,
        )
        service.attach_ingest(handle)

    metrics_server = None
    if metrics_port is not None:
        metrics_server = obs.start_http_server(metrics_port, host=host)

    server = EstimateServer(service, host=host, port=port)
    await server.start()
    serving_record: dict[str, object] = {
        "type": "serving",
        "host": server.host,
        "port": server.port,
        "pairs_ingested": monitor.window.pairs_ingested,
        "ingesting": handle is not None,
    }
    if metrics_server is not None:
        serving_record["metrics_port"] = metrics_server.port
    announce(serving_record)
    if ready is not None:
        ready.set()

    def _finalize_ingest() -> None:
        # Runs on the default executor: the lock is shared with long sketch
        # merges (`sliding`), so acquiring it on the event loop would stall
        # every connection until the merge finishes.
        with service.lock:
            service.refresh()
            checkpoint()

    async def watch_ingest() -> None:
        if handle is None:
            return
        handle.start()
        while not handle.finished:
            await asyncio.sleep(0.05)
        await asyncio.get_running_loop().run_in_executor(None, _finalize_ingest)
        record: dict[str, object] = {
            "type": "ingest-finished",
            "pairs_ingested": monitor.window.pairs_ingested,
            "batches": handle.batches_done,
        }
        if handle.error is not None:
            record["type"] = "ingest-failed"
            record["error"] = repr(handle.error)
        announce(record)

    watcher = asyncio.ensure_future(watch_ingest())
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        def _shutdown_ingest() -> None:
            # Executor-side shutdown: joining the ingest thread and taking
            # the shared lock for the final checkpoint both block, and the
            # loop must keep draining in-flight connections meanwhile.
            if handle is not None:
                handle.stop()
                try:
                    handle.join(timeout=10.0)
                except RuntimeError:
                    pass  # ingest failure was already announced / is in stats
            if snapshot_store is not None:
                with service.lock:
                    checkpoint()

        try:
            shutdown = asyncio.get_running_loop().run_in_executor(
                None, _shutdown_ingest
            )
            try:
                await asyncio.shield(shutdown)
            except asyncio.CancelledError:
                # Cancelled again mid-shutdown: the executor thread still
                # finishes the join + checkpoint; only the wait is abandoned.
                pass
        finally:
            watcher.cancel()
            try:
                # Join the cancellation: watch_ingest may be mid-finalize on
                # the executor, and tearing the loop down under it loses that
                # work (and swallows any exception it was about to raise).
                await asyncio.shield(watcher)
            except asyncio.CancelledError:
                pass
        if metrics_server is not None:
            metrics_server.close()
        await asyncio.shield(server.close())
