"""Service operation registry: one :class:`OpSpec` per query op.

The same pattern as the central method registry
(:mod:`repro.registry.specs`): instead of an if/elif chain in the request
handler, each operation is described once — its name, required and
optional parameters, a validator per parameter, and whether it can be
answered from the lock-free read snapshot or needs the ingest lock (the
sketch-merging ``sliding`` op).  The dispatcher and the ``stats`` op's
self-description both derive from this table, so the protocol surface and
its documentation cannot drift apart.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from dataclasses import dataclass, field

import numpy as np

from repro.service.protocol import BAD_REQUEST, ProtocolError

#: Parameter validator: raises ProtocolError, returns the coerced value.
Validator = Callable[[object], object]


def _positive_int(name: str) -> Validator:
    def validate(value: object) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(BAD_REQUEST, f"{name!r} must be an integer")
        if value <= 0:
            raise ProtocolError(BAD_REQUEST, f"{name!r} must be positive")
        return value

    return validate


def _user_id(value: object) -> object:
    if not isinstance(value, (int, str)) or isinstance(value, bool):
        raise ProtocolError(BAD_REQUEST, "'user' must be an integer or a string")
    return value


def _user_list(value: object) -> list:
    if isinstance(value, np.ndarray):
        # The binary transport's ``ids`` lift: an integer dtype proves every
        # element is an in-range integer id, so the per-element checks of
        # the JSON path would be pure overhead here.
        if value.ndim == 1 and value.dtype.kind in "iu":
            return value.tolist()
        raise ProtocolError(BAD_REQUEST, "'users' must be a list of user ids")
    if not isinstance(value, list):
        raise ProtocolError(BAD_REQUEST, "'users' must be a list of user ids")
    return [_user_id(user) for user in value]


@dataclass(frozen=True)
class OpSpec:
    """Everything the dispatcher needs to know about one operation."""

    #: Operation name on the wire (the request's ``op`` field).
    name: str
    #: Required parameters: field name -> validator.
    required: Mapping[str, Validator] = field(default_factory=dict)
    #: Optional parameters: field name -> (default, validator).
    optional: Mapping[str, tuple[object, Validator]] = field(default_factory=dict)
    #: False when the op reads the immutable snapshot (never blocks ingest);
    #: True when it must briefly hold the ingest lock (sketch merges).
    needs_lock: bool = False
    #: One-line description (surfaced by the ``stats`` op and the docs).
    summary: str = ""
    #: Array-typed *request* fields the binary transport may lift out of the
    #: JSON header into raw buffers: (field name, frame array kind).
    request_arrays: tuple[tuple[str, str], ...] = ()
    #: Array-typed *result* fields, same shape (kinds are defined in
    #: :mod:`repro.service.frames`: ``ids`` / ``floats`` / ``pairs``).
    result_arrays: tuple[tuple[str, str], ...] = ()

    def extract_params(self, request: Mapping[str, object]) -> dict[str, object]:
        """Validate and coerce the request's parameters for this op."""
        params: dict[str, object] = {}
        for name, validate in self.required.items():
            if name not in request:
                raise ProtocolError(
                    BAD_REQUEST, f"op {self.name!r} requires parameter {name!r}"
                )
            params[name] = validate(request[name])
        for name, (default, validate) in self.optional.items():
            params[name] = validate(request[name]) if name in request else default
        return params

    def describe(self) -> dict[str, object]:
        """JSON-ready description (embedded in the ``stats`` op)."""
        described: dict[str, object] = {
            "op": self.name,
            "required": sorted(self.required),
            "optional": {name: default for name, (default, _) in self.optional.items()},
            "summary": self.summary,
        }
        if self.request_arrays or self.result_arrays:
            described["binary_arrays"] = {
                "request": dict(self.request_arrays),
                "result": dict(self.result_arrays),
            }
        return described


#: The operation registry, in documentation order.
OPS: Mapping[str, OpSpec] = {
    spec.name: spec
    for spec in (
        OpSpec(
            name="spread",
            required={"user": _user_id},
            summary="one user's sliding-window spread estimate",
        ),
        OpSpec(
            name="batch_spread",
            required={"users": _user_list},
            summary="spread estimates for a list of users, in input order",
            request_arrays=(("users", "ids"),),
            result_arrays=(("estimates", "floats"),),
        ),
        OpSpec(
            name="topk",
            optional={"k": (10, _positive_int("k"))},
            summary="the top-k spreaders of the sliding window",
            result_arrays=(("top", "pairs"),),
        ),
        OpSpec(
            name="sliding",
            optional={"k_epochs": (None, _positive_int("k_epochs"))},
            needs_lock=True,
            summary="full sliding estimates merged over the last k_epochs epochs",
            result_arrays=(("estimates", "pairs"),),
        ),
        OpSpec(
            name="stats",
            summary="monitor state, ingest progress, method spec and this op table",
        ),
        OpSpec(
            name="metrics",
            summary="live telemetry snapshot: every counter, gauge and histogram",
        ),
    )
}
