"""Pytest path setup: make the in-tree package importable without installation.

The canonical workflow is ``pip install -e .`` (offline environments need
``--no-build-isolation``); this shim keeps ``pytest`` working from a clean
checkout as well.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
