"""Micro-benchmarks of the hot paths, independent of any paper figure.

These are the numbers a downstream user cares about when sizing a deployment
of the pure-Python implementation: hash throughput, per-update cost of each
estimator under both engines (scalar pair-by-pair vs the engine layer's
vectorised batch path), and the relative cost of the shared-array substrates.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.baselines import CSE, ExactCounter, PerUserHLLPP, PerUserLPC, VirtualHLL
from repro.core import FreeBS, FreeRS
from repro.engine import EncodedBatch
from repro.hashing import hash64, hash64_array, hash_pair
from repro.sketches import BitArray, HyperLogLog, LinearProbabilisticCounter, RegisterArray

_PAIRS = [(user, item) for user, item in zip(itertools.cycle(range(100)), range(2_000))]
_ENCODED = EncodedBatch.from_int_arrays(
    np.array([user for user, _ in _PAIRS]), np.array([item for _, item in _PAIRS])
)


def _drive(estimator):
    for user, item in _PAIRS:
        estimator.update(user, item)
    return estimator


def _drive_encoded(estimator):
    estimator.update_encoded(_ENCODED)
    return estimator


class TestHashingThroughput:
    def test_hash64_scalar(self, benchmark):
        benchmark(lambda: [hash64(i) for i in range(1_000)])

    def test_hash_pair_scalar(self, benchmark):
        benchmark(lambda: [hash_pair(i, i * 7) for i in range(1_000)])

    def test_hash64_vectorised(self, benchmark):
        keys = np.arange(100_000, dtype=np.uint64)
        benchmark(lambda: hash64_array(keys))


class TestSubstrateThroughput:
    def test_bitarray_set(self, benchmark):
        bits = BitArray(1 << 16)
        indices = [hash64(i) % (1 << 16) for i in range(2_000)]
        benchmark(lambda: [bits.set_bit(index) for index in indices])

    def test_registerarray_update(self, benchmark):
        registers = RegisterArray(1 << 12)
        updates = [(hash64(i) % (1 << 12), (i % 20) + 1) for i in range(2_000)]
        benchmark(lambda: [registers.update(index, rank) for index, rank in updates])

    def test_lpc_add(self, benchmark):
        benchmark(lambda: [LinearProbabilisticCounter(4096).add(i) for i in range(500)])

    def test_hll_add(self, benchmark):
        sketch = HyperLogLog(m=256)
        benchmark(lambda: [sketch.add(i) for i in range(2_000)])


class TestEstimatorThroughput:
    def test_freebs_updates(self, benchmark):
        benchmark(lambda: _drive(FreeBS(1 << 18)))

    def test_freers_updates(self, benchmark):
        benchmark(lambda: _drive(FreeRS(1 << 15)))

    def test_cse_updates(self, benchmark):
        benchmark(lambda: _drive(CSE(1 << 18, virtual_size=128)))

    def test_vhll_updates(self, benchmark):
        benchmark(lambda: _drive(VirtualHLL(1 << 15, virtual_size=128)))

    def test_per_user_lpc_updates(self, benchmark):
        benchmark(lambda: _drive(PerUserLPC(1 << 18, expected_users=100)))

    def test_per_user_hllpp_updates(self, benchmark):
        benchmark(lambda: _drive(PerUserHLLPP(1 << 18, expected_users=100)))

    def test_exact_counter_updates(self, benchmark):
        benchmark(lambda: _drive(ExactCounter()))


class TestBatchEngineThroughput:
    """The same six methods through the engine's vectorised batch path.

    One pre-encoded 2k-pair batch per round; results are bit-identical to
    the scalar loop of :class:`TestEstimatorThroughput`, so the two classes
    together are the engine-vs-engine comparison.
    """

    def test_freebs_batch(self, benchmark):
        benchmark(lambda: _drive_encoded(FreeBS(1 << 18)))

    def test_freers_batch(self, benchmark):
        benchmark(lambda: _drive_encoded(FreeRS(1 << 15)))

    def test_cse_batch(self, benchmark):
        benchmark(lambda: _drive_encoded(CSE(1 << 18, virtual_size=128)))

    def test_vhll_batch(self, benchmark):
        benchmark(lambda: _drive_encoded(VirtualHLL(1 << 15, virtual_size=128)))

    def test_per_user_lpc_batch(self, benchmark):
        benchmark(lambda: _drive_encoded(PerUserLPC(1 << 18, expected_users=100)))

    def test_per_user_hllpp_batch(self, benchmark):
        benchmark(lambda: _drive_encoded(PerUserHLLPP(1 << 18, expected_users=100)))
