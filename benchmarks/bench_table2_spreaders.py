"""Benchmark / regeneration target for Table II (detection on every dataset).

Regenerates the end-of-stream FNR/FPR of super-spreader detection on every
configured dataset and asserts the paper's Table II ordering: FreeBS and
FreeRS dominate the baselines on both error rates (up to small-sample noise
on the scaled-down stand-ins).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.experiments import run_experiment


def test_table2_detection_all_datasets(benchmark, bench_config, save_table):
    """Regenerate Table II and check the method ordering per dataset."""
    table = benchmark.pedantic(
        run_experiment, args=("table2", bench_config), rounds=1, iterations=1
    )
    save_table("table2_spreaders", table)
    rows = table.row_dicts()

    fnr = defaultdict(dict)
    fpr = defaultdict(dict)
    for row in rows:
        fnr[row["dataset"]][row["method"]] = row["fnr"]
        fpr[row["dataset"]][row["method"]] = row["fpr"]

    for dataset in bench_config.datasets:
        baselines_fnr = [fnr[dataset][m] for m in ("CSE", "vHLL", "HLL++")]
        # The proposed methods never miss more spreaders than the *worst*
        # baseline and beat the baseline average.
        assert fnr[dataset]["FreeBS"] <= max(baselines_fnr) + 1e-9, dataset
        assert fnr[dataset]["FreeRS"] <= max(baselines_fnr) + 1e-9, dataset
        assert fnr[dataset]["FreeBS"] <= np.mean(baselines_fnr) + 0.02, dataset
        # False positives stay rare in absolute terms.
        assert fpr[dataset]["FreeBS"] < 0.02, dataset
        assert fpr[dataset]["FreeRS"] < 0.02, dataset
