"""Benchmark / regeneration target for Figure 6 (detection quality over time).

Regenerates the over-time FNR/FPR series of super-spreader detection on the
sanjose stand-in and asserts the paper's claim that the proposed methods are
more accurate detectors than the baselines at (almost) every point in time.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.experiments import run_experiment


def test_figure6_detection_over_time(benchmark, bench_config, save_table):
    """Regenerate the Figure 6 series and check the detection-quality ordering."""
    table = benchmark.pedantic(
        run_experiment,
        args=("figure6", bench_config),
        kwargs={"dataset": "sanjose"},
        rounds=1,
        iterations=1,
    )
    save_table("figure6_spreaders_time", table)
    rows = table.row_dicts()

    mean_fnr = defaultdict(list)
    mean_fpr = defaultdict(list)
    for row in rows:
        mean_fnr[row["method"]].append(row["fnr"])
        mean_fpr[row["method"]].append(row["fpr"])

    # Proposed methods: no worse than the best baseline on average FNR, and
    # clearly better than the average baseline.
    baseline_fnr = np.mean(mean_fnr["CSE"] + mean_fnr["vHLL"] + mean_fnr["HLL++"])
    assert np.mean(mean_fnr["FreeBS"]) <= baseline_fnr + 1e-9
    assert np.mean(mean_fnr["FreeRS"]) <= baseline_fnr + 1e-9
    # False positive rates of the proposed methods stay small in absolute terms.
    assert np.mean(mean_fpr["FreeBS"]) < 0.02
    assert np.mean(mean_fpr["FreeRS"]) < 0.02
    # Every method reports one row per checkpoint.
    for method, values in mean_fnr.items():
        assert len(values) == bench_config.checkpoints, method
