"""Benchmark / regeneration target for Table I (dataset summary).

Regenerates the dataset summary statistics of the paper's Table I from the
synthetic stand-ins and records how long generating + summarising every
dataset takes (the cost of the workload-generation substrate itself).
"""

from __future__ import annotations

from repro.experiments import run_experiment


def test_table1_dataset_summary(benchmark, bench_config, save_table):
    """Regenerate Table I and persist the result table."""
    table = benchmark.pedantic(
        run_experiment, args=("table1", bench_config), rounds=1, iterations=1
    )
    save_table("table1_datasets", table)
    # Every configured dataset appears exactly once.
    assert table.column("dataset") == bench_config.datasets
    # The stand-ins preserve the heavy-tail property: max >> average cardinality.
    for row in table.row_dicts():
        average = row["total_cardinality"] / row["users"]
        assert row["max_cardinality"] > 3 * average
