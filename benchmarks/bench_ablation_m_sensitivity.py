"""Ablation benchmark A1 — CSE/vHLL sensitivity to the virtual sketch size m.

Regenerates the sweep of ``m`` for CSE and vHLL (Challenge 1 of the paper)
and asserts the trade-off that makes ``m`` hard to tune: growing ``m`` helps
heavy users but hurts light users, while the parameter-free methods need no
such choice.
"""

from __future__ import annotations

from repro.experiments import run_experiment


def test_ablation_m_sensitivity(benchmark, bench_config, save_table):
    """Regenerate the m-sensitivity sweep and check the light/heavy trade-off."""
    sweep = [64, 256, 1024]
    table = benchmark.pedantic(
        run_experiment,
        args=("ablation_m_sensitivity", bench_config),
        kwargs={"dataset": "Orkut", "sweep": sweep},
        rounds=1,
        iterations=1,
    )
    save_table("ablation_m_sensitivity", table)
    rows = table.row_dicts()

    def series(method):
        return {row["m"]: row for row in rows if row["method"] == method and row["m"] != "-"}

    # For CSE a larger m extends the estimation range and so reduces the
    # heavy-user error; for vHLL (whose range is unbounded already) the main
    # effect of growing m is extra noise, so only the light-user trend is
    # asserted for it.
    cse = series("CSE")
    assert cse[max(sweep)]["rse_heavy_users"] <= cse[min(sweep)]["rse_heavy_users"] * 1.2
    for method in ("CSE", "vHLL"):
        points = series(method)
        smallest, largest = points[min(sweep)], points[max(sweep)]
        # The light-user error does not improve with m (and typically grows):
        # this is exactly why m cannot be tuned for both ends at once.
        assert largest["rse_light_users"] >= smallest["rse_light_users"] * 0.8, method

    # The parameter-free reference rows are present for context.
    reference_methods = {row["method"] for row in rows if row["m"] == "-"}
    assert reference_methods == {"FreeBS", "FreeRS"}
