"""Memory at scale: bytes/tracked-user of the columnar arena vs the old dicts.

The arena PR's claim is not throughput but *footprint*: per-user state that
used to live in Python dicts of boxed objects — ``{user: float}`` cached
estimates plus ``{user: np.ndarray(m)}`` position rows for CSE/vHLL — now
lives in numpy columns addressed by interned codes, with the positions block
dropped entirely above :data:`repro.state.DENSE_POSITIONS_LIMIT` users (rows
recompute from 8-byte folds, bit-identical by the hashing contract).

Measured and recorded here, per method (CSE, vHLL):

* **dict baseline** — bytes/tracked-user of the replaced structure, measured
  with a ``sys.getsizeof`` sweep over a real 100k-user population (per-user
  cost is size-independent: dict slot + key object + boxed float + one
  ``m``-cell int64 row per user);
* **arena** — ``UserArena.resident_bytes()`` after a real 1M-user ingest
  through the batch engine, same sweep semantics (columns + interner dict +
  key objects).

Acceptance bars (asserted unconditionally — these are allocation counts,
not timings, so CI contention cannot miss them):

* arena bytes/tracked-user <= 50% of the dict baseline at 1M users for
  both CSE and vHLL (locally the ratio is ~10x, the bar is generous);
* a 5M-user ingest + top-k run through the FreeBS spreader monitor
  completes, with every user tracked and a well-formed top-k answer — the
  "multi-million-user scale" smoke the arena exists for.

Persists ``benchmarks/results/BENCH_memory_scale.json`` for the trajectory.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.baselines import CSE, VirtualHLL
from repro.engine.encoding import EncodedBatch
from repro.monitor import MonitorSpec

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "BENCH_memory_scale.json"

_RNG = np.random.default_rng(23)

_VIRTUAL_SIZE = 128
_DICT_SAMPLE_USERS = 100_000
_ARENA_USERS = 1_000_000
_MONITOR_USERS = 5_000_000

_FACTORIES = {
    "CSE": lambda: CSE(1 << 22, virtual_size=_VIRTUAL_SIZE, seed=3),
    "vHLL": lambda: VirtualHLL(1 << 20, virtual_size=_VIRTUAL_SIZE, seed=3),
}


def _dict_baseline_bytes_per_user(family, n_users: int) -> float:
    """Footprint of the replaced per-user dicts, measured on a real sample.

    Rebuilds exactly what the estimators used to hold per user — a cached
    float estimate and a private ``(m,)`` int64 positions row — and sweeps it
    with ``sys.getsizeof``.  Per-user cost does not depend on the population
    (dicts over-allocate by a bounded factor), so the 100k sample stands in
    for the 1M figure at ~1/10 the build cost.
    """
    users = np.arange(n_users, dtype=np.int64)
    rows = family.positions_from_hashes(users.astype(np.uint64))
    estimates = {}
    positions_cache = {}
    for user in users.tolist():
        estimates[user] = float(user) * 0.5
        positions_cache[user] = rows[user].copy()
    total = sys.getsizeof(estimates) + sys.getsizeof(positions_cache)
    for user, value in estimates.items():
        total += sys.getsizeof(user) + sys.getsizeof(value)
    for row in positions_cache.values():
        total += sys.getsizeof(row)
    return total / n_users


def _ingest_users(estimator, n_users: int, chunk: int = 1 << 16) -> float:
    """Feed one pair per user through the batch engine; returns seconds."""
    start = time.perf_counter()
    for begin in range(0, n_users, chunk):
        users = np.arange(begin, min(begin + chunk, n_users), dtype=np.int64)
        items = _RNG.integers(0, 1 << 30, size=users.size)
        estimator.update_encoded(EncodedBatch.from_int_arrays(users, items))
    return time.perf_counter() - start


def _method_rows() -> dict:
    rows = {}
    for name, factory in _FACTORIES.items():
        estimator = factory()
        dict_bytes = _dict_baseline_bytes_per_user(
            estimator._family, _DICT_SAMPLE_USERS
        )
        ingest_seconds = _ingest_users(estimator, _ARENA_USERS)
        arena = estimator._arena
        assert arena.n_users == _ARENA_USERS
        assert arena.positions_mode == "fold", (
            "a 1M-user arena must have dropped its dense positions block"
        )
        arena_bytes = arena.resident_bytes() / arena.n_users
        # Spot-check the fold-mode rows against the hash family directly:
        # memory mode must never change an estimate input.
        probe = np.array([0, 1, _ARENA_USERS - 1], dtype=np.int64)
        codes = arena.lookup_many(probe)
        expected = estimator._family.positions_from_hashes(probe.astype(np.uint64))
        np.testing.assert_array_equal(arena.positions_rows(codes), expected)
        rows[name] = {
            "users": arena.n_users,
            "positions_mode": arena.positions_mode,
            "growth_events": arena.growth_events,
            "ingest_seconds": ingest_seconds,
            "dict_bytes_per_user": dict_bytes,
            "arena_bytes_per_user": arena_bytes,
            "reduction": dict_bytes / arena_bytes,
        }
    return rows


def _monitor_scale_row() -> dict:
    """5M tracked users through the spreader monitor's incremental path."""
    monitor = MonitorSpec(
        method="FreeBS",
        memory_bits=1 << 22,
        epoch_pairs=1 << 24,  # no rotation: one epoch holds the whole run
        window_epochs=4,
        delta=5e-3,
        top_k=10,
    ).build()
    chunk = 1 << 17
    heavy = [(int(user), int(item)) for user in range(100) for item in range(50)]
    start = time.perf_counter()
    monitor.observe(heavy)
    for begin in range(0, _MONITOR_USERS, chunk):
        users = np.arange(begin, min(begin + chunk, _MONITOR_USERS))
        items = _RNG.integers(0, 1 << 30, size=users.size)
        monitor.observe(list(zip(users.tolist(), items.tolist())))
    ingest_seconds = time.perf_counter() - start
    start = time.perf_counter()
    snapshot = monitor.read_snapshot()
    top = snapshot.topk(10)
    query_seconds = time.perf_counter() - start
    # Heavy hitters are drawn from the same 0..5M id space, so the tracked
    # population is exactly the 5M unique users.
    assert len(snapshot.estimates) == _MONITOR_USERS
    assert len(top) == 10
    # The planted heavy hitters must own the head of the ranking.
    assert all(user < 100 for user, _ in top)
    probe = _RNG.integers(0, _MONITOR_USERS, size=10_000).tolist()
    assert snapshot.batch_spread(probe) == [snapshot.spread(user) for user in probe]
    return {
        "users_tracked": len(snapshot.estimates),
        "pairs": _MONITOR_USERS + len(heavy),
        "ingest_seconds": ingest_seconds,
        "topk_and_probe_seconds": query_seconds,
        "incremental_evaluations": monitor.incremental_evaluations,
        "full_evaluations": monitor.full_evaluations,
    }


def test_memory_scale_json(benchmark):
    """Measure the sweep once, persist the JSON artifact, gate the 2x bar."""

    def sweep():
        return {
            "methods": _method_rows(),
            "monitor_5m": _monitor_scale_row(),
        }

    payload = benchmark.pedantic(sweep, rounds=1, iterations=1)
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {RESULTS_PATH}")
    for name, row in payload["methods"].items():
        print(
            f"{name}: dict {row['dict_bytes_per_user']:.0f} B/user -> "
            f"arena {row['arena_bytes_per_user']:.0f} B/user "
            f"({row['reduction']:.1f}x) over {row['users']} users"
        )
        assert row["arena_bytes_per_user"] <= 0.5 * row["dict_bytes_per_user"], (
            f"{name}: arena must use <= 50% of the dict baseline per user "
            f"(got {row['arena_bytes_per_user']:.0f} vs "
            f"{row['dict_bytes_per_user']:.0f} B/user)"
        )
    scale = payload["monitor_5m"]
    print(
        f"monitor: {scale['users_tracked']} users ingested in "
        f"{scale['ingest_seconds']:.1f}s, top-k + 10k probes in "
        f"{scale['topk_and_probe_seconds']:.2f}s"
    )
