"""Shared fixtures for the benchmark suite.

Every benchmark module regenerates one table or figure of the paper.  The
moving parts shared by all of them:

* ``bench_config`` — the experiment configuration used by the run.  The
  preset is selected with the ``FREESKETCH_BENCH_PRESET`` environment
  variable (``quick`` by default so ``pytest benchmarks/ --benchmark-only``
  finishes in a few minutes; set it to ``full`` to regenerate the
  EXPERIMENTS.md numbers).
* ``save_table`` — writes the rendered result table to
  ``benchmarks/results/<name>.txt`` and echoes it to stdout, so the numbers
  survive after the run and can be diffed between configurations.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

# Make the in-tree package importable when the project is not installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.experiments.report import Table  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--transport",
        choices=("shm", "queue"),
        default="shm",
        help="chunk-handoff transport used by the parallel-ingest benchmarks",
    )


@pytest.fixture(scope="session")
def ingest_transport(request) -> str:
    """The ``--transport`` the parallel-ingest benchmarks should exercise."""
    return request.config.getoption("--transport")


def _selected_config() -> ExperimentConfig:
    preset = os.environ.get("FREESKETCH_BENCH_PRESET", "quick").lower()
    if preset == "full":
        return ExperimentConfig.full()
    if preset == "default":
        return ExperimentConfig()
    return ExperimentConfig.quick()


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Experiment configuration shared by every benchmark in the session."""
    return _selected_config()


@pytest.fixture(scope="session")
def save_table():
    """Return a helper that persists a result table under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def _save(name: str, table: Table) -> Table:
        rendered = table.render()
        (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n", encoding="utf-8")
        table.to_csv(RESULTS_DIR / f"{name}.csv")
        print(f"\n{rendered}\n")
        return table

    return _save
