"""Ablation benchmark A2 — FreeBS vs FreeRS cross-over under equal memory.

Regenerates the early-vs-late arrival comparison of Section IV-C and asserts
its two qualitative claims: bit sharing is at least as accurate for the
early group, and each empirical error stays below the corresponding
analytic bound of Theorems 1/2 (up to sampling noise).
"""

from __future__ import annotations

from repro.experiments import run_experiment


def test_ablation_freebs_vs_freers(benchmark, bench_config, save_table):
    """Regenerate the FreeBS-vs-FreeRS cross-over table and check its claims."""
    table = benchmark.pedantic(
        run_experiment,
        args=("ablation_bs_vs_rs", bench_config),
        kwargs={"group_users": 120, "cardinality": 200},
        rounds=1,
        iterations=1,
    )
    save_table("ablation_bs_vs_rs", table)
    rows = {(row["group"], row["method"]): row for row in table.row_dicts()}

    # Early group: bit sharing at least as accurate as register sharing.
    early_bs = rows[("early_users", "FreeBS")]["empirical_rse"]
    early_rs = rows[("early_users", "FreeRS")]["empirical_rse"]
    assert early_bs <= early_rs * 1.1

    # Empirical errors respect the analytic bounds (up to 50% sampling slack).
    for (group, method), row in rows.items():
        assert row["empirical_rse"] <= 1.5 * row["analytic_rse_bound"] + 0.02, (group, method)
