"""Wire-transport comparison: NDJSON vs binary frames, queue vs shm handoff.

Not a paper artefact: the transports exist so the serving and scale-out
layers stop paying text/pickle costs for data that is raw numbers end to
end.  Two measurements, one JSON:

* **service** — ``batch_spread`` over 10k users against a live server,
  once per transport on the same monitor state.  NDJSON formats and parses
  ~200 KB of JSON text per exchange; binary moves the same data as two raw
  buffers (~160 KB) plus a compact header.  The answers must be
  bit-identical — the transport may only change the bytes on the wire.
* **ingest** — 4-worker ``parallel_ingest`` over ~1M pairs, once per chunk
  handoff.  The Manager queue pickles every chunk through a proxy process;
  the shm ring memcpys it into a shared slot.  Merged estimates must be
  bit-identical between the transports.

Each measurement repeats and keeps the minimum — interpreter warm-up and
page-cache effects dominate single cold runs, and the floor is the number
the transport actually determines.  Persisted to
``benchmarks/results/BENCH_transport.json``.  As with the other runtime
benchmarks the speedup bars (binary >= 3x on the service side, shm >= queue
on the ingest side) bind only with ``FREESKETCH_BENCH_STRICT=1``: shared CI
runners are too contended to gate merges on wall-clock, but the JSON
records the trajectory either way.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.monitor import MonitorSpec
from repro.runtime import parallel_ingest
from repro.service import EstimateServer, EstimateService, ServiceClient

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "BENCH_transport.json"

_STRICT = os.environ.get("FREESKETCH_BENCH_STRICT") == "1"

# -- service half -----------------------------------------------------------

_N_QUERY_USERS = 10_000
_SERVICE_REPS = 9

# -- ingest half ------------------------------------------------------------

_N_PAIRS = 1_000_000
_N_INGEST_USERS = 5_000
_INGEST_WORKERS = 4
_INGEST_REPS = 3
_INGEST_CONFIG = ExperimentConfig(memory_bits=1 << 20, seed=7)
_INGEST_METHOD = "FreeRS"


class _ServerThread:
    """Run an EstimateServer on its own event loop thread for sync clients."""

    def __init__(self, service: EstimateService):
        self.service = service
        self.port = None
        self._loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(10.0), "server did not come up"

    def _run(self):
        async def main():
            server = EstimateServer(self.service, port=0)
            await server.start()
            self.port = server.port
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self._ready.set()
            await self._stop.wait()
            await server.close()

        asyncio.run(main())

    def close(self):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10.0)


class _ArrayStream:
    """Minimal stream over two pre-generated id arrays (no tuple list)."""

    def __init__(self, users: np.ndarray, items: np.ndarray) -> None:
        self._users = users
        self._items = items

    def to_int_arrays(self):
        return self._users, self._items

    def __iter__(self):
        return zip(self._users.tolist(), self._items.tolist())


def _service_monitor():
    rng = np.random.default_rng(19)
    users = rng.integers(0, _N_QUERY_USERS, size=120_000)
    items = rng.integers(0, 50_000, size=120_000)
    monitor = MonitorSpec(
        method="FreeRS",
        memory_bits=1 << 18,
        expected_users=_N_QUERY_USERS,
        epoch_pairs=40_000,
        window_epochs=4,
        delta=5e-3,
        seed=1,
    ).build()
    monitor.observe(list(zip(users.tolist(), items.tolist())))
    return monitor


def _measure_service() -> dict:
    monitor = _service_monitor()
    server = _ServerThread(EstimateService(monitor))
    query_users = list(range(_N_QUERY_USERS))
    rows, answers = {}, {}
    try:
        for transport in ("ndjson", "binary"):
            with ServiceClient(port=server.port, transport=transport) as client:
                assert client.transport == transport
                client.batch_spread(query_users)  # warm-up exchange
                best = float("inf")
                for _ in range(_SERVICE_REPS):
                    start = time.perf_counter()
                    answers[transport] = client.batch_spread(query_users)
                    best = min(best, time.perf_counter() - start)
            rows[transport] = {
                "best_seconds": best,
                "queries_per_second": 1.0 / best,
                "users_per_second": _N_QUERY_USERS / best,
            }
    finally:
        server.close()
    assert answers["binary"] == answers["ndjson"], (
        "binary batch_spread diverged from the NDJSON answer"
    )
    speedup = rows["ndjson"]["best_seconds"] / rows["binary"]["best_seconds"]
    return {
        "op": "batch_spread",
        "users": _N_QUERY_USERS,
        "reps": _SERVICE_REPS,
        "transports": rows,
        "binary_speedup": speedup,
        "answers_identical": True,
    }


def _measure_ingest() -> dict:
    rng = np.random.default_rng(23)
    stream = _ArrayStream(
        ((rng.random(_N_PAIRS) ** 2) * _N_INGEST_USERS).astype(np.int64),
        rng.integers(0, 200_000, size=_N_PAIRS),
    )
    rows, estimates = {}, {}
    for transport in ("queue", "shm"):
        best = float("inf")
        for _ in range(_INGEST_REPS):
            report = parallel_ingest(
                stream,
                method=_INGEST_METHOD,
                config=_INGEST_CONFIG,
                expected_users=_N_INGEST_USERS,
                workers=_INGEST_WORKERS,
                shards=_INGEST_WORKERS,
                transport=transport,
            )
            best = min(best, report.seconds)
            estimates[transport] = report.estimates()
        rows[transport] = {
            "best_seconds": best,
            "pairs_per_second": _N_PAIRS / best,
        }
    assert estimates["shm"] == estimates["queue"], (
        "shm ingest diverged from the queue-transport run"
    )
    speedup = rows["queue"]["best_seconds"] / rows["shm"]["best_seconds"]
    return {
        "method": _INGEST_METHOD,
        "pairs": _N_PAIRS,
        "workers": _INGEST_WORKERS,
        "reps": _INGEST_REPS,
        "transports": rows,
        "shm_speedup": speedup,
        "estimates_identical": True,
    }


def test_transport_speedups_and_json(benchmark):
    """Measure both halves, assert bit-identity, persist the JSON."""

    def measure():
        return {"service": _measure_service(), "ingest": _measure_ingest()}

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {RESULTS_PATH}")
    service, ingest = results["service"], results["ingest"]
    print(
        f"batch_spread({service['users']}): "
        f"ndjson {service['transports']['ndjson']['best_seconds'] * 1e3:7.2f} ms  "
        f"binary {service['transports']['binary']['best_seconds'] * 1e3:7.2f} ms  "
        f"speedup {service['binary_speedup']:.2f}x"
    )
    print(
        f"ingest({ingest['pairs']} pairs, {ingest['workers']} workers): "
        f"queue {ingest['transports']['queue']['best_seconds']:6.2f} s  "
        f"shm {ingest['transports']['shm']['best_seconds']:6.2f} s  "
        f"speedup {ingest['shm_speedup']:.2f}x"
    )

    if not _STRICT:
        print("speedup bars informational (set FREESKETCH_BENCH_STRICT=1 to enforce)")
        return
    assert service["binary_speedup"] >= 3.0, (
        "binary must answer a 10k-user batch_spread at >=3x the NDJSON rate"
    )
    assert ingest["shm_speedup"] >= 1.0, (
        "the shm ring must not be slower than the Manager-queue handoff"
    )
