"""Telemetry overhead gate: instrumentation must cost < 3% (CI metrics-smoke).

The observability layer promises to be always-on-cheap: every hot-path
instrument checks one ``enabled`` flag before touching a lock, and
:func:`repro.obs.timed` skips the clock entirely when disabled.  This
benchmark holds the layer to that promise on the two paths that matter:

* **ingest** — ``SpreaderMonitor.observe`` over batched pairs (epoch
  rotations, evaluations and top-k maintenance all fire their counters);
* **query** — ``EstimateService.handle`` answering ``batch_spread``
  requests (request/latency/error instruments plus the ``timed`` span).

Each path is timed best-of-N with the registry enabled and disabled, in
alternating order so thermal drift hits both modes equally.  The relative
regression of the enabled mode is asserted to stay under
``OVERHEAD_BAR`` (3%), and the measurements are persisted to
``benchmarks/results/BENCH_obs_overhead.json`` for the CI artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.monitor import MonitorSpec
from repro.service.server import EstimateService

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "BENCH_obs_overhead.json"

#: Maximum tolerated relative slowdown of instrumented vs disabled mode.
OVERHEAD_BAR = 0.03

_RNG = np.random.default_rng(23)

#: Alternating enabled/disabled timings per path.  The true per-call cost
#: of an instrument is a few hundred nanoseconds while scheduler jitter on
#: a shared CI box is microseconds, so the estimator is min-of-many: the
#: minimum over this many alternations converges on the real cost while a
#: single unlucky descheduling cannot inflate either mode.
_REPEATS = 15


def _pairs(n_users: int, n_pairs: int):
    users = _RNG.integers(0, n_users, size=n_pairs).tolist()
    items = _RNG.integers(0, 1 << 30, size=n_pairs).tolist()
    return list(zip(users, items))


def _build_monitor(expected_users: int = 5_000):
    return MonitorSpec(
        method="FreeRS",
        memory_bits=1 << 15,
        expected_users=expected_users,
        epoch_pairs=1 << 14,
        window_epochs=4,
        top_k=10,
        delta=5e-3,
    ).build()


def _measure_modes(setup, run, work_units: int):
    """Best-of-N seconds for enabled and disabled mode, alternated.

    ``setup()`` builds fresh state per timing (ingest mutates the monitor,
    so reuse would make later runs cheaper); only ``run(state)`` is timed.
    """
    best = {True: float("inf"), False: float("inf")}
    try:
        for trial in range(_REPEATS * 2):
            enabled = trial % 2 == 0
            obs.set_enabled(enabled)
            state = setup()
            start = time.perf_counter()
            run(state)
            best[enabled] = min(best[enabled], time.perf_counter() - start)
    finally:
        obs.set_enabled(True)
    overhead = (best[True] - best[False]) / best[False]
    return {
        "enabled_seconds": best[True],
        "disabled_seconds": best[False],
        "enabled_ops_per_s": work_units / best[True],
        "disabled_ops_per_s": work_units / best[False],
        "overhead": overhead,
    }


def _ingest_row():
    pairs = _pairs(n_users=5_000, n_pairs=120_000)
    batch = 2_048

    def run(monitor):
        for start in range(0, len(pairs), batch):
            monitor.observe(pairs[start : start + batch])

    row = _measure_modes(_build_monitor, run, work_units=len(pairs))
    row["pairs"] = len(pairs)
    row["batch_size"] = batch
    return row


def _query_row():
    monitor = _build_monitor()
    for _start in range(0, 60_000, 4_096):
        monitor.observe(_pairs(n_users=5_000, n_pairs=4_096))
    service = EstimateService(monitor)
    users = _RNG.integers(0, 5_000, size=256).tolist()
    requests = [
        {"op": "batch_spread", "id": index, "users": users} for index in range(2_000)
    ]
    reply = service.handle(requests[0])
    assert reply["ok"], reply  # the loop below must time answers, not errors

    def run(_state):
        for request in requests:
            service.handle(request)

    row = _measure_modes(lambda: None, run, work_units=len(requests))
    row["requests"] = len(requests)
    row["users_per_request"] = len(users)
    return row


def test_obs_overhead_json(benchmark):
    """Measure both paths once, persist the artifact, gate the 3% bar."""

    def sweep():
        return {"ingest": _ingest_row(), "query": _query_row()}

    payload = benchmark.pedantic(sweep, rounds=1, iterations=1)
    payload["overhead_bar"] = OVERHEAD_BAR

    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {RESULTS_PATH}")
    for path in ("ingest", "query"):
        row = payload[path]
        print(
            f"  {path:6s} enabled {row['enabled_ops_per_s']:,.0f} ops/s, "
            f"disabled {row['disabled_ops_per_s']:,.0f} ops/s, "
            f"overhead {row['overhead'] * 100:+.2f}%"
        )

    for path in ("ingest", "query"):
        overhead = payload[path]["overhead"]
        assert overhead < OVERHEAD_BAR, (
            f"{path} instrumentation overhead {overhead * 100:.2f}% exceeds "
            f"the {OVERHEAD_BAR * 100:.0f}% bar"
        )
