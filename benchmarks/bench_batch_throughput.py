"""Throughput benchmark of the vectorised batch path vs the scalar path.

Not a paper artefact: documents how far the pure-Python implementation can be
pushed for high-rate stream replay (the reproduction's known weak point) and
guards the batch path's speed advantage against regressions.
"""

from __future__ import annotations

import numpy as np

from repro.core import FreeBS, FreeBSBatch, FreeRS, FreeRSBatch, encode_int_pairs

_RNG = np.random.default_rng(17)
_USERS = _RNG.integers(0, 500, size=50_000)
_ITEMS = _RNG.integers(0, 20_000, size=50_000)
_PAIRS = [(int(user), int(item)) for user, item in zip(_USERS[:5_000], _ITEMS[:5_000])]
_ENCODED = encode_int_pairs(_USERS, _ITEMS)


def test_freebs_scalar_5k_pairs(benchmark):
    """Scalar FreeBS over 5k pairs (baseline for the speedup comparison)."""

    def run():
        estimator = FreeBS(1 << 20, seed=1)
        for user, item in _PAIRS:
            estimator.update(user, item)
        return estimator

    benchmark(run)


def test_freebs_batch_50k_pairs_encoded(benchmark):
    """Vectorised FreeBS over 50k pre-encoded pairs (the high-rate path)."""

    def run():
        estimator = FreeBSBatch(1 << 20, seed=1)
        estimator.update_batch_encoded(*_ENCODED)
        return estimator

    benchmark(run)


def test_freers_scalar_5k_pairs(benchmark):
    """Scalar FreeRS over 5k pairs."""

    def run():
        estimator = FreeRS((1 << 20) // 5, seed=1)
        for user, item in _PAIRS:
            estimator.update(user, item)
        return estimator

    benchmark(run)


def test_freers_batch_50k_pairs_encoded(benchmark):
    """Vectorised FreeRS over 50k pre-encoded pairs."""

    def run():
        estimator = FreeRSBatch((1 << 20) // 5, seed=1)
        estimator.update_batch_encoded(*_ENCODED)
        return estimator

    benchmark(run)


def test_batch_path_is_faster_per_pair(benchmark):
    """Assert the batch path's per-pair cost beats the scalar path by >3x."""
    import time

    def measure():
        start = time.perf_counter()
        scalar = FreeBS(1 << 20, seed=2)
        for user, item in _PAIRS:
            scalar.update(user, item)
        scalar_seconds_per_pair = (time.perf_counter() - start) / len(_PAIRS)

        start = time.perf_counter()
        batch = FreeBSBatch(1 << 20, seed=2)
        batch.update_batch_encoded(*_ENCODED)
        batch_seconds_per_pair = (time.perf_counter() - start) / len(_USERS)
        return scalar_seconds_per_pair, batch_seconds_per_pair

    scalar_cost, batch_cost = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert batch_cost * 3 < scalar_cost
