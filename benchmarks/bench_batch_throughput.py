"""Throughput of the engine's vectorised batch paths vs the scalar paths.

Not a paper artefact: with the engine layer, *every* compared method has
both a scalar and a vectorised update path producing bit-identical results,
so the cross-method throughput comparison is vectorised-vs-vectorised — this
benchmark sweeps all six methods under both engines, guards the batch
speedups against regressions, and emits a machine-readable JSON file
(``benchmarks/results/BENCH_batch_throughput.json``) for the perf trajectory.

The acceptance bar enforced here: the CSE and vHLL batch paths — whose
scalar twins pay an O(m) estimate refresh per pair — must be at least 5x
faster per pair; FreeBS keeps its historical 3x bar.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.baselines import CSE, PerUserHLLPP, PerUserLPC, VirtualHLL
from repro.core import FreeBS, FreeBSBatch, FreeRS, FreeRSBatch, encode_int_pairs
from repro.engine import DEFAULT_CHUNK_PAIRS, EncodedBatch

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "BENCH_batch_throughput.json"

_RNG = np.random.default_rng(17)
_USERS = _RNG.integers(0, 500, size=50_000)
_ITEMS = _RNG.integers(0, 20_000, size=50_000)
_PAIRS = [(int(user), int(item)) for user, item in zip(_USERS, _ITEMS)]
_ENCODED_LEGACY = encode_int_pairs(_USERS, _ITEMS)

#: Scalar paths are orders of magnitude slower; time them on a prefix and
#: normalise per pair.
_SCALAR_PAIRS = _PAIRS[:5_000]

METHOD_FACTORIES = {
    "FreeBS": lambda: FreeBS(1 << 20, seed=1),
    "FreeRS": lambda: FreeRS((1 << 20) // 5, seed=1),
    "CSE": lambda: CSE(1 << 20, virtual_size=256, seed=1),
    "vHLL": lambda: VirtualHLL((1 << 20) // 5, virtual_size=256, seed=1),
    "LPC": lambda: PerUserLPC(1 << 20, expected_users=500, seed=1),
    "HLL++": lambda: PerUserHLLPP(1 << 20, expected_users=500, seed=1),
}

#: Vectorised chunk length used by the batch measurements — the engine's
#: default ``process`` chunking, imported so the two stay in lockstep.
_CHUNK = DEFAULT_CHUNK_PAIRS


#: Timing repeats per measurement; the minimum is reported (standard noise
#: suppression — the true cost is the least-interrupted run).
_REPEATS = 3


def _scalar_seconds_per_pair(method: str) -> float:
    best = float("inf")
    for _ in range(_REPEATS):
        estimator = METHOD_FACTORIES[method]()
        start = time.perf_counter()
        for user, item in _SCALAR_PAIRS:
            estimator.update(user, item)
        best = min(best, (time.perf_counter() - start) / len(_SCALAR_PAIRS))
    return best


def _batch_seconds_per_pair(method: str) -> float:
    best = float("inf")
    for _ in range(_REPEATS):
        estimator = METHOD_FACTORIES[method]()
        start = time.perf_counter()
        for chunk_start in range(0, len(_USERS), _CHUNK):
            chunk = EncodedBatch.from_int_arrays(
                _USERS[chunk_start : chunk_start + _CHUNK],
                _ITEMS[chunk_start : chunk_start + _CHUNK],
            )
            estimator.update_encoded(chunk)
        best = min(best, (time.perf_counter() - start) / len(_USERS))
    return best


@pytest.mark.parametrize("method", sorted(METHOD_FACTORIES))
def test_scalar_engine_throughput(benchmark, method):
    """Per-pair cost of the scalar path, one benchmark point per method."""

    def run():
        estimator = METHOD_FACTORIES[method]()
        for user, item in _SCALAR_PAIRS[:1_000]:
            estimator.update(user, item)
        return estimator

    benchmark(run)


@pytest.mark.parametrize("method", sorted(METHOD_FACTORIES))
def test_batch_engine_throughput(benchmark, method):
    """Per-pair cost of the vectorised path, one benchmark point per method."""

    def run():
        estimator = METHOD_FACTORIES[method]()
        for start in range(0, len(_PAIRS), _CHUNK):
            estimator.update_batch(_PAIRS[start : start + _CHUNK])
        return estimator

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_freebs_legacy_batch_50k_pairs_encoded(benchmark):
    """The original dense-state FreeBS batch class (kept for comparison)."""

    def run():
        estimator = FreeBSBatch(1 << 20, seed=1)
        estimator.update_batch_encoded(*_ENCODED_LEGACY)
        return estimator

    benchmark(run)


def test_freers_legacy_batch_50k_pairs_encoded(benchmark):
    """The original FreeRS batch class (kept for comparison)."""

    def run():
        estimator = FreeRSBatch((1 << 20) // 5, seed=1)
        estimator.update_batch_encoded(*_ENCODED_LEGACY)
        return estimator

    benchmark(run)


def test_engine_sweep_speedups_and_json(benchmark):
    """Sweep all six methods under both engines; persist machine-readable JSON.

    Asserts the acceptance bars: >= 5x per-pair speedup for CSE and vHLL
    (whose scalar paths are O(m) per pair), >= 3x for FreeBS (the historical
    bar of the legacy batch classes).
    """

    def sweep():
        results = {}
        for method in METHOD_FACTORIES:
            scalar_cost = _scalar_seconds_per_pair(method)
            batch_cost = _batch_seconds_per_pair(method)
            results[method] = {
                "scalar_seconds_per_pair": scalar_cost,
                "batch_seconds_per_pair": batch_cost,
                "speedup": scalar_cost / batch_cost,
            }
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    payload = {
        "pairs": len(_PAIRS),
        "scalar_pairs_timed": len(_SCALAR_PAIRS),
        "chunk": _CHUNK,
        "methods": results,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {RESULTS_PATH}")
    for method, row in results.items():
        print(
            f"{method:8s} scalar={row['scalar_seconds_per_pair'] * 1e6:9.2f}us/pair "
            f"batch={row['batch_seconds_per_pair'] * 1e6:9.2f}us/pair "
            f"speedup={row['speedup']:6.1f}x"
        )

    assert results["CSE"]["speedup"] >= 5.0, "CSE batch path must be >=5x faster"
    assert results["vHLL"]["speedup"] >= 5.0, "vHLL batch path must be >=5x faster"
    assert results["FreeBS"]["speedup"] >= 3.0, "FreeBS batch path must be >=3x faster"
