"""Benchmark / regeneration target for Figure 5 (RSE vs cardinality).

Regenerates the headline accuracy comparison on every configured dataset and
asserts the paper's central result: under equal memory, the proposed
parameter-free methods (FreeBS, FreeRS) have lower error than the virtual
sketch baselines (CSE, vHLL) on every dataset.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.experiments import run_experiment


def test_figure5_rse_curves(benchmark, bench_config, save_table):
    """Regenerate the Figure 5 RSE curves and check the method ordering."""
    table = benchmark.pedantic(
        run_experiment, args=("figure5", bench_config), rounds=1, iterations=1
    )
    save_table("figure5_rse", table)
    rows = table.row_dicts()

    # Per-dataset weighted mean RSE (weights = users per bucket) per method.
    for dataset in bench_config.datasets:
        summary = defaultdict(lambda: [0.0, 0.0])
        for row in rows:
            if row["dataset"] != dataset:
                continue
            total, weight = summary[row["method"]]
            summary[row["method"]] = [
                total + row["rse"] * row["users_in_bucket"],
                weight + row["users_in_bucket"],
            ]
        mean_rse = {method: total / weight for method, (total, weight) in summary.items()}
        assert mean_rse["FreeBS"] < mean_rse["CSE"], (dataset, mean_rse)
        assert mean_rse["FreeBS"] < mean_rse["vHLL"], (dataset, mean_rse)
        assert mean_rse["FreeRS"] < mean_rse["vHLL"], (dataset, mean_rse)

    # Aggregate advantage across all datasets (paper: often orders of magnitude).
    overall = defaultdict(list)
    for row in rows:
        overall[row["method"]].append(row["rse"])
    proposed = min(np.mean(overall["FreeBS"]), np.mean(overall["FreeRS"]))
    baseline = max(np.mean(overall["CSE"]), np.mean(overall["vHLL"]))
    assert baseline / max(proposed, 1e-9) > 2.0
