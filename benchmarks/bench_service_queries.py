"""Query throughput and latency of the estimate-serving layer.

Three questions the service layer's design makes claims about:

* how fast the hot snapshot ops answer (``batch_spread`` / ``topk`` read an
  immutable dict — no sketch work, no lock);
* what the cold ``sliding`` op costs with the closed-epoch prefix cache
  against the uncached merge it replaces;
* whether a saturating reader measurably slows concurrent ingest (it must
  not: readers never take the ingest lock on the hot path).

Persists ``benchmarks/results/service_queries.json`` for the artifact
trail.  No hard latency bars — CI machines vary — but the ingest-slowdown
ratio gets a loose sanity ceiling, because a violation means the lock-free
read path regressed into taking the lock.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.monitor import MonitorSpec, SlidingMergeCache
from repro.runtime import ingest_handle_for_monitor
from repro.service import EstimateService

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "service_queries.json"

_RNG = np.random.default_rng(31)
_PAIRS = [
    (int(user), int(item))
    for user, item in zip(
        _RNG.integers(0, 400, size=30_000), _RNG.integers(0, 20_000, size=30_000)
    )
]
_BATCH = 2_048


def _monitor():
    monitor = MonitorSpec(
        method="FreeRS",
        memory_bits=1 << 18,
        expected_users=400,
        epoch_pairs=4_096,
        window_epochs=4,
        delta=5e-3,
        seed=1,
    ).build()
    return monitor


def _served_monitor():
    monitor = _monitor()
    for start in range(0, len(_PAIRS), _BATCH):
        monitor.observe(_PAIRS[start : start + _BATCH])
    return EstimateService(monitor), monitor


def test_hot_snapshot_queries(benchmark):
    """batch_spread(32 users) + topk(10) from the read snapshot, in a loop."""
    service, _monitor_ = _served_monitor()
    users = [int(user) for user in _RNG.integers(0, 400, size=32)]

    def hot_queries(rounds=2_000):
        for _ in range(rounds):
            service.handle({"op": "batch_spread", "users": users})
            service.handle({"op": "topk", "k": 10})
        return service.queries_served

    served = benchmark.pedantic(hot_queries, rounds=1, iterations=1)
    assert served >= 4_000


def test_sliding_cache_against_uncached_merge(benchmark):
    """The prefix cache must not be slower than the merge it memoises."""
    _service, monitor = _served_monitor()
    window = monitor.window
    cache = SlidingMergeCache()

    def both(rounds=20):
        timings = {}
        start = time.perf_counter()
        for _ in range(rounds):
            window.window_estimates()
        timings["uncached"] = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(rounds):
            cache.sliding_estimates(window)
        timings["cached"] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(both, rounds=1, iterations=1)
    # Identity is asserted by the test-suite; here only the cost relation.
    assert timings["cached"] <= timings["uncached"] * 1.5


def test_readers_do_not_stall_ingest_json(benchmark):
    """Ingest alone vs. ingest under a saturating reader; persist the JSON."""

    def sweep():
        timings = {}
        # Baseline: background ingest with nobody asking questions.
        monitor = _monitor()
        handle = ingest_handle_for_monitor(monitor, _PAIRS, batch_size=_BATCH)
        start = time.perf_counter()
        handle.start()
        handle.join(timeout=120.0)
        timings["ingest_alone"] = time.perf_counter() - start

        # Same ingest under a steadily querying reader (~1 kqps pacing: a
        # busy-spin reader would measure GIL scheduling, not the lock-free
        # read path this benchmark watches).
        monitor = _monitor()
        service = EstimateService(monitor)
        handle = ingest_handle_for_monitor(
            monitor,
            _PAIRS,
            batch_size=_BATCH,
            on_batch=lambda _n: service.refresh(),
            lock=service.lock,
        )
        users = [int(user) for user in _RNG.integers(0, 400, size=32)]
        start = time.perf_counter()
        handle.start()
        queries = 0
        while not handle.finished:
            service.handle({"op": "batch_spread", "users": users})
            queries += 1
            time.sleep(0.001)
        handle.join(timeout=120.0)
        timings["ingest_under_readers"] = time.perf_counter() - start
        timings["queries_during_ingest"] = queries
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    slowdown = timings["ingest_under_readers"] / timings["ingest_alone"]
    payload = {
        "pairs": len(_PAIRS),
        "batch": _BATCH,
        "seconds": {
            "ingest_alone": timings["ingest_alone"],
            "ingest_under_readers": timings["ingest_under_readers"],
        },
        "queries_during_ingest": timings["queries_during_ingest"],
        "reader_slowdown": slowdown,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {RESULTS_PATH}")
    print(
        f"ingest alone {timings['ingest_alone']:.3f}s, under readers "
        f"{timings['ingest_under_readers']:.3f}s ({slowdown:.2f}x), "
        f"{timings['queries_during_ingest']} queries answered meanwhile"
    )
    # Loose sanity ceiling: the hot read path takes no lock, so a large
    # slowdown means the design regressed (GIL contention alone stays small).
    assert slowdown < 3.0