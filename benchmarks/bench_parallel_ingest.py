"""Speedup of the multiprocess parallel-ingest runtime vs single-process.

Not a paper artefact: the paper argues FreeBS/FreeRS sustain line-rate
ingest under a fixed memory budget, and :mod:`repro.runtime` is the
reproduction's scale-out path.  This benchmark ingests one synthetic stream
through ``workers = 1, 2, 4`` (higher counts only when the machine has the
cores), asserts the runtime's correctness contract — the merged estimates
are **bit-identical** to the single-process run with the same shard count —
and records the speedup trajectory in a machine-readable JSON file
(``benchmarks/results/BENCH_parallel_ingest.json``).

Acceptance bars:

* bit-identity must hold on every machine, always (asserted unconditionally);
* with ``FREESKETCH_BENCH_STRICT=1`` the throughput bars also bind:
  ``workers=4`` must reach >= 2x single-process throughput on machines with
  at least 4 usable CPUs, ``workers=2`` >= 1.3x with at least 2.  The bars
  are opt-in because shared CI runners can be contended enough to miss them
  without any code defect; the JSON records the trajectory either way.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.runtime import parallel_ingest

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "BENCH_parallel_ingest.json"


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


_CPUS = _usable_cpus()

#: Benchmark stream: ~1M pairs over a skewed user population, heavy enough
#: that per-pair sketch work (vHLL's register updates and noise-corrected
#: estimate refreshes) dominates the coordinator's routing cost.
_N_PAIRS = 1_000_000
_N_USERS = 5_000

_RNG = np.random.default_rng(23)
# Zipf-ish skew via squaring a uniform draw: a few heavy users, a long tail.
_USERS = ((_RNG.random(_N_PAIRS) ** 2) * _N_USERS).astype(np.int64)
_ITEMS = _RNG.integers(0, 200_000, size=_N_PAIRS)

_CONFIG = ExperimentConfig(memory_bits=1 << 20, virtual_size=256, seed=7)
_METHOD = "vHLL"
_SHARDS = 4


class _ArrayStream:
    """Minimal stream over two pre-generated id arrays (no tuple list)."""

    def __init__(self, users: np.ndarray, items: np.ndarray) -> None:
        self._users = users
        self._items = items

    def to_int_arrays(self):
        return self._users, self._items

    def __iter__(self):
        return zip(self._users.tolist(), self._items.tolist())


_STREAM = _ArrayStream(_USERS, _ITEMS)


def _worker_counts() -> list:
    counts = [1, 2]
    if _CPUS >= 4:
        counts.append(4)
    return counts


def test_parallel_ingest_speedup_and_json(benchmark, ingest_transport):
    """Sweep worker counts, assert bit-identity, persist the speedup JSON.

    ``--transport queue`` re-runs the sweep over the Manager-queue handoff
    (the default is the shared-memory ring); the choice is recorded in the
    JSON so trajectories from the two transports are never confused.
    """

    def sweep():
        results = {}
        baseline = None
        for workers in _worker_counts():
            report = parallel_ingest(
                _STREAM,
                method=_METHOD,
                config=_CONFIG,
                expected_users=_N_USERS,
                workers=workers,
                shards=_SHARDS,
                transport=ingest_transport,
            )
            if baseline is None:
                baseline = report
            results[workers] = {
                "report": report,
                "seconds": report.seconds,
                "pairs_per_second": report.pairs_per_second,
                "speedup": baseline.seconds / report.seconds,
                "estimates_match": report.estimates() == baseline.estimates(),
            }
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    payload = {
        "method": _METHOD,
        "transport": ingest_transport,
        "shards": _SHARDS,
        "pairs": _N_PAIRS,
        "users": _N_USERS,
        "usable_cpus": _CPUS,
        "workers": {
            str(workers): {
                "seconds": row["seconds"],
                "pairs_per_second": row["pairs_per_second"],
                "speedup": row["speedup"],
                "estimates_match": row["estimates_match"],
            }
            for workers, row in results.items()
        },
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {RESULTS_PATH}")
    for workers, row in results.items():
        print(
            f"workers={workers} {row['seconds']:7.2f}s "
            f"{row['pairs_per_second'] / 1e3:8.0f}k pairs/s "
            f"speedup={row['speedup']:5.2f}x match={row['estimates_match']}"
        )

    # The correctness contract is unconditional; the throughput bars bind
    # only in strict mode and only when the machine can actually run the
    # workers on separate cores.
    for workers, row in results.items():
        assert row["estimates_match"], (
            f"workers={workers} estimates diverged from the single-process run"
        )
    if os.environ.get("FREESKETCH_BENCH_STRICT") != "1":
        print("speedup bars informational (set FREESKETCH_BENCH_STRICT=1 to enforce)")
    elif _CPUS >= 4:
        assert results[4]["speedup"] >= 2.0, "4 workers must be >=2x single-process"
    elif _CPUS >= 2:
        assert results[2]["speedup"] >= 1.3, "2 workers must be >=1.3x single-process"
    else:
        print("single-CPU machine: speedup bars not applicable (bit-identity checked)")
