"""Overhead of the monitoring subsystem over raw estimator replay.

The monitor adds three costs on top of the engine's batch path: epoch
rotation bookkeeping, the per-batch sliding-window evaluation (a merge of
the epoch ring plus a ranking pass), and snapshot writes.  This benchmark
measures each against the raw ``process()`` replay of the same stream, and
persists a machine-readable JSON file
(``benchmarks/results/monitor_ingest.json``) for the perf trajectory.

No hard speed bars: the monitor's evaluation cost is dominated by the
sliding merge, whose cost is a function of the window size and method, not
of the code path under regression watch.  The JSON exists so a regression
is visible in the artifact trail.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core import FreeRS
from repro.monitor import MonitorSpec, WindowedEstimator

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "monitor_ingest.json"

_RNG = np.random.default_rng(23)
_PAIRS = [
    (int(user), int(item))
    for user, item in zip(
        _RNG.integers(0, 400, size=40_000), _RNG.integers(0, 20_000, size=40_000)
    )
]
_BATCH = 2_048


def _raw_replay():
    estimator = FreeRS((1 << 18) // 5, seed=1)
    estimator.process(_PAIRS, chunk_size=_BATCH)
    return estimator


def _windowed_replay():
    window = WindowedEstimator(
        lambda _k: FreeRS((1 << 18) // 5, seed=1), epoch_pairs=8_192, window_epochs=4
    )
    for start in range(0, len(_PAIRS), _BATCH):
        window.ingest(_PAIRS[start : start + _BATCH])
    return window


def _monitored_replay():
    monitor = MonitorSpec(
        method="FreeRS",
        memory_bits=1 << 18,
        expected_users=400,
        epoch_pairs=8_192,
        window_epochs=4,
        delta=5e-3,
        seed=1,
    ).build()
    for start in range(0, len(_PAIRS), _BATCH):
        monitor.observe(_PAIRS[start : start + _BATCH])
    return monitor


def test_raw_estimator_replay(benchmark):
    """Baseline: the engine's chunked batch replay, no windowing."""
    benchmark.pedantic(_raw_replay, rounds=1, iterations=1)


def test_windowed_ingest(benchmark):
    """Windowed ingest: rotation bookkeeping on top of the batch path."""
    benchmark.pedantic(_windowed_replay, rounds=1, iterations=1)


def test_monitored_ingest_with_evaluation(benchmark):
    """Full monitor: ingest + per-batch sliding evaluation and ranking."""
    benchmark.pedantic(_monitored_replay, rounds=1, iterations=1)


def test_overhead_json(benchmark):
    """Measure all three modes once and persist the overhead ratios."""

    def sweep():
        timings = {}
        for name, run in (
            ("raw", _raw_replay),
            ("windowed", _windowed_replay),
            ("monitored", _monitored_replay),
        ):
            start = time.perf_counter()
            run()
            timings[name] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    payload = {
        "pairs": len(_PAIRS),
        "batch": _BATCH,
        "seconds": timings,
        "windowed_overhead": timings["windowed"] / timings["raw"],
        "monitored_overhead": timings["monitored"] / timings["raw"],
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {RESULTS_PATH}")
    for name, seconds in timings.items():
        print(f"{name:10s} {seconds * 1e6 / len(_PAIRS):8.3f}us/pair")
    # Sanity only: windowed ingest must stay in the same order of magnitude
    # as the raw replay (the sketches are identical, only bookkeeping differs).
    assert payload["windowed_overhead"] < 5.0
