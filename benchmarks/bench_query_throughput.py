"""Query-side throughput: scalar per-user loops vs the vectorised query engine.

Three claims this PR's query engine makes, measured and recorded:

* ``estimate_many`` (and ``estimate_fresh_many`` for the shared-sketch
  methods) beats the per-user ``estimate()`` loop for every method, with
  bit-identical results;
* ``ReadSnapshot.batch_spread`` over 10k integer users is >= 5x the
  per-user ``spread`` loop (the C-level ``itemgetter`` dict-probe path);
* the monitor's incremental top-k refresh over a 100k-user window is >= 5x
  the full rebuild-and-sort it replaced.

Persists ``benchmarks/results/BENCH_query_throughput.json`` (scalar vs
batch ops/sec per method) so CI tracks the query-path trajectory from this
PR on.  The two acceptance bars are asserted with generous margins below
the locally observed ratios, because CI machines vary.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.baselines import CSE, PerUserHLLPP, PerUserLPC, VirtualHLL
from repro.core import FreeBS, FreeRS
from repro.monitor import MonitorSpec
from repro.streams import zipf_bipartite_stream

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "BENCH_query_throughput.json"

_RNG = np.random.default_rng(17)

_FACTORIES = {
    "FreeBS": lambda: FreeBS(1 << 18, seed=2),
    "FreeRS": lambda: FreeRS(1 << 15, seed=2),
    "CSE": lambda: CSE(1 << 18, virtual_size=128, seed=2),
    "vHLL": lambda: VirtualHLL(1 << 15, virtual_size=128, seed=2),
    "LPC": lambda: PerUserLPC(1 << 20, expected_users=2_000, seed=2),
    "HLL++": lambda: PerUserHLLPP(1 << 20, expected_users=2_000, seed=2),
}


def _ops_per_second(fn, queries: int, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return queries / best if best > 0 else float("inf")


def _method_rows():
    pairs = zipf_bipartite_stream(
        n_users=2_000, n_pairs=60_000, max_cardinality=600, duplicate_factor=0.3, seed=5
    )
    users = sorted({user for user, _ in pairs})
    rows = {}
    for name, factory in _FACTORIES.items():
        estimator = factory()
        estimator.process(pairs)
        scalar = [estimator.estimate(user) for user in users]
        batch = estimator.estimate_many(users)
        assert batch == scalar, f"{name}: estimate_many diverged from estimate()"
        row = {
            "users": len(users),
            "scalar_ops_per_s": _ops_per_second(
                lambda: [estimator.estimate(user) for user in users], len(users)
            ),
            "batch_ops_per_s": _ops_per_second(
                lambda: estimator.estimate_many(users), len(users)
            ),
        }
        if hasattr(estimator, "estimate_fresh_many"):
            fresh_scalar = [estimator.estimate_fresh(user) for user in users]
            assert estimator.estimate_fresh_many(users) == fresh_scalar, (
                f"{name}: estimate_fresh_many diverged"
            )
            row["fresh_scalar_ops_per_s"] = _ops_per_second(
                lambda: [estimator.estimate_fresh(user) for user in users], len(users)
            )
            row["fresh_batch_ops_per_s"] = _ops_per_second(
                lambda: estimator.estimate_fresh_many(users), len(users)
            )
        rows[name] = row
    return rows


def _batch_spread_row():
    monitor = MonitorSpec(
        method="FreeRS",
        memory_bits=1 << 18,
        expected_users=20_000,
        epoch_pairs=1 << 16,
        window_epochs=4,
        delta=5e-3,
    ).build()
    pairs = list(
        zip(
            _RNG.integers(0, 20_000, size=80_000).tolist(),
            _RNG.integers(0, 50_000, size=80_000).tolist(),
        )
    )
    for start in range(0, len(pairs), 8_192):
        monitor.observe(pairs[start : start + 8_192])
    snapshot = monitor.read_snapshot()
    # Parity including misses and str/int duality...
    mixed = _RNG.integers(0, 25_000, size=10_000).tolist() + ["7", "no-such-user"]
    assert snapshot.batch_spread(mixed) == [snapshot.spread(user) for user in mixed]
    # ...throughput on the hot-path workload: querying tracked users.
    tracked = [user for user in snapshot.estimates if isinstance(user, int)]
    queries = [
        tracked[index] for index in _RNG.integers(0, len(tracked), size=10_000).tolist()
    ]
    return {
        "users_tracked": len(snapshot.estimates),
        "queries": len(queries),
        "scalar_ops_per_s": _ops_per_second(
            lambda: [snapshot.spread(user) for user in queries], len(queries)
        ),
        "batch_ops_per_s": _ops_per_second(
            lambda: snapshot.batch_spread(queries), len(queries)
        ),
    }


def _topk_refresh_row():
    def build(n_users=100_000):
        monitor = MonitorSpec(
            method="FreeBS",
            memory_bits=1 << 21,
            expected_users=n_users,
            epoch_pairs=1 << 22,  # no rotation: isolate the refresh cost
            window_epochs=4,
            delta=5e-3,
            top_k=10,
        ).build()
        users = np.arange(n_users)
        items = _RNG.integers(0, 1 << 30, size=n_users)
        pairs = list(zip(users.tolist(), items.tolist()))
        for start in range(0, len(pairs), 16_384):
            monitor.observe(pairs[start : start + 16_384])
        return monitor

    monitor = build()
    probe = [
        (int(user), int(item))
        for user, item in zip(
            _RNG.integers(0, 100_000, size=512), _RNG.integers(1 << 30, 1 << 31, size=512)
        )
    ]

    # Scalar baseline: the pre-engine per-batch refresh — rebuild the full
    # sliding estimate dict and sort it for the top-k.
    def full_resort():
        estimates = monitor.window.window_estimates()
        return sorted(estimates.items(), key=lambda item: item[1], reverse=True)[:10]

    start = time.perf_counter()
    rounds = 5
    for _ in range(rounds):
        baseline_top = full_resort()
    scalar_seconds = (time.perf_counter() - start) / rounds

    # Incremental path: observe a 512-pair batch (dirty-set re-scoring).
    start = time.perf_counter()
    for _ in range(rounds):
        monitor.observe(probe)
    incremental_seconds = (time.perf_counter() - start) / rounds
    assert monitor.incremental_evaluations >= rounds
    assert monitor.current_top == full_resort(), "incremental top-k diverged"
    assert baseline_top  # populated above

    return {
        "users_tracked": len(monitor.last_window_estimates()),
        "batch_pairs": len(probe),
        "scalar_refresh_s": scalar_seconds,
        "incremental_refresh_s": incremental_seconds,
        "scalar_refresh_per_s": 1.0 / scalar_seconds,
        "incremental_refresh_per_s": 1.0 / incremental_seconds,
    }


def test_query_throughput_json(benchmark):
    """Measure the sweep once, persist the JSON artifact, gate the 5x bars."""

    def sweep():
        return {
            "methods": _method_rows(),
            "batch_spread_10k": _batch_spread_row(),
            "topk_refresh_100k": _topk_refresh_row(),
        }

    payload = benchmark.pedantic(sweep, rounds=1, iterations=1)
    spread = payload["batch_spread_10k"]
    spread["speedup"] = spread["batch_ops_per_s"] / spread["scalar_ops_per_s"]
    refresh = payload["topk_refresh_100k"]
    refresh["speedup"] = refresh["scalar_refresh_s"] / refresh["incremental_refresh_s"]
    for row in payload["methods"].values():
        row["speedup"] = row["batch_ops_per_s"] / row["scalar_ops_per_s"]
        if "fresh_batch_ops_per_s" in row:
            row["fresh_speedup"] = (
                row["fresh_batch_ops_per_s"] / row["fresh_scalar_ops_per_s"]
            )

    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {RESULTS_PATH}")
    for row in payload["methods"].values():
        fresh = (
            f", fresh {row['fresh_speedup']:.1f}x" if "fresh_speedup" in row else ""
        )
        print(f"  {name:7s} estimate_many {row['speedup']:.1f}x{fresh}")
    print(f"  batch_spread(10k)   {spread['speedup']:.1f}x")
    print(f"  topk refresh (100k) {refresh['speedup']:.1f}x")

    # Acceptance bars (ISSUE 5): >= 5x with bit-identical results, asserted
    # above inside the sweep.
    assert spread["speedup"] >= 5.0, f"batch_spread only {spread['speedup']:.1f}x"
    assert refresh["speedup"] >= 5.0, f"topk refresh only {refresh['speedup']:.1f}x"
