"""Benchmark / regeneration target for Figure 3 (per-update runtime vs m).

Two parts:

* the experiment run that regenerates the figure's series (per-update time
  as a function of the virtual sketch size m for all six methods);
* direct pytest-benchmark micro-benchmarks of a single ``update`` call for
  the two proposed methods and the two virtual-sketch baselines, which give
  tighter per-call numbers than the coarse experiment loop.

The assertion encodes the paper's complexity claim: FreeBS/FreeRS update time
is flat in m, while CSE/vHLL grow with m.
"""

from __future__ import annotations

import itertools

from repro.baselines import CSE, VirtualHLL
from repro.core import FreeBS, FreeRS
from repro.experiments import run_experiment


def test_figure3_runtime_vs_m(benchmark, bench_config, save_table):
    """Regenerate the Figure 3 series and check the O(1)-vs-O(m) shape."""
    # Sweep two orders of magnitude in m so the O(m) term dominates the
    # vectorised constant overhead of the virtual-sketch scan.
    sweep = [64, 256, 1024, 4096]
    table = benchmark.pedantic(
        run_experiment,
        args=("figure3", bench_config),
        kwargs={"sweep": sweep, "pairs_per_point": 2_000},
        rounds=1,
        iterations=1,
    )
    save_table("figure3_runtime", table)
    rows = table.row_dicts()
    first, last = rows[0], rows[-1]
    # CSE and vHLL slow down measurably as m grows 64x ...
    assert last["CSE"] > 1.3 * first["CSE"]
    assert last["vHLL"] > 1.3 * first["vHLL"]
    # ... while the proposed methods stay within noise of flat.
    assert last["FreeBS"] < 2.0 * first["FreeBS"]
    assert last["FreeRS"] < 2.0 * first["FreeRS"]


def _drive(estimator, pairs):
    for user, item in pairs:
        estimator.update(user, item)


_PAIRS = [(user, item) for user, item in zip(itertools.cycle(range(50)), range(500))]


def test_update_freebs(benchmark, bench_config):
    """Per-update cost of FreeBS (O(1) per pair)."""
    benchmark(lambda: _drive(FreeBS(bench_config.memory_bits), _PAIRS))


def test_update_freers(benchmark, bench_config):
    """Per-update cost of FreeRS (O(1) per pair)."""
    benchmark(lambda: _drive(FreeRS(bench_config.registers), _PAIRS))


def test_update_cse(benchmark, bench_config):
    """Per-update cost of CSE (O(m) estimate refresh per pair)."""
    benchmark(
        lambda: _drive(
            CSE(bench_config.memory_bits, virtual_size=bench_config.virtual_size), _PAIRS
        )
    )


def test_update_vhll(benchmark, bench_config):
    """Per-update cost of vHLL (O(m) estimate refresh per pair)."""
    benchmark(
        lambda: _drive(
            VirtualHLL(bench_config.registers, virtual_size=bench_config.virtual_size), _PAIRS
        )
    )
