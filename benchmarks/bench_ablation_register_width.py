"""Ablation benchmark A5 — FreeRS register width under a fixed memory budget.

Regenerates the register-width sweep and asserts the design-choice argument
for the paper's ``w = 5``: very narrow registers (w = 3) hurt heavy users
through early saturation, while the accuracy at w = 5 is within noise of the
best width in the sweep for both light and heavy users.
"""

from __future__ import annotations

from repro.experiments import run_experiment


def test_ablation_register_width(benchmark, bench_config, save_table):
    """Regenerate the register-width sweep and check the w=5 design choice."""
    widths = [3, 5, 8]
    table = benchmark.pedantic(
        run_experiment,
        args=("ablation_register_width", bench_config),
        kwargs={"dataset": "Orkut", "widths": widths},
        rounds=1,
        iterations=1,
    )
    save_table("ablation_register_width", table)
    rows = {row["width_bits"]: row for row in table.row_dicts()}

    # Register counts follow M / w exactly (up to the minimum-size clamp).
    assert rows[3]["registers"] > rows[5]["registers"] > rows[8]["registers"]

    # w = 5 is never much worse than the best width in the sweep.
    best_light = min(row["rse_light_users"] for row in rows.values())
    best_heavy = min(row["rse_heavy_users"] for row in rows.values())
    assert rows[5]["rse_light_users"] <= best_light * 1.5 + 0.02
    assert rows[5]["rse_heavy_users"] <= best_heavy * 1.5 + 0.02

    # Narrow registers saturate at rank 7, i.e. they stop distinguishing
    # loads beyond ~2^7 pairs per register; wide registers never saturate at
    # this scale, so their heavy-user error should not be better than w=5 by
    # more than sampling noise while using 8/5x fewer registers.
    assert rows[3]["max_rank"] == 7
    assert rows[8]["rse_heavy_users"] >= rows[5]["rse_heavy_users"] * 0.5
