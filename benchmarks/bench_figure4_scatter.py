"""Benchmark / regeneration target for Figure 4 (estimated vs actual, Orkut).

Regenerates the per-method scatter summaries on the Orkut stand-in.  The
assertions encode the figure's qualitative content: FreeBS/FreeRS bucket
means hug the diagonal across the whole range, while CSE saturates for
heavy users (its mean estimate stops growing near m ln m).
"""

from __future__ import annotations

import math

from repro.experiments import run_experiment


def test_figure4_scatter(benchmark, bench_config, save_table):
    """Regenerate the Figure 4 scatter summaries on the Orkut stand-in."""
    table = benchmark.pedantic(
        run_experiment,
        args=("figure4", bench_config),
        kwargs={"dataset": "Orkut"},
        rounds=1,
        iterations=1,
    )
    save_table("figure4_scatter", table)
    rows = table.row_dicts()

    def buckets(method):
        return [row for row in rows if row["method"] == method]

    # FreeBS and FreeRS stay near the diagonal in every populated bucket.
    for method in ("FreeBS", "FreeRS"):
        for row in buckets(method):
            center = row["actual_bucket"]
            if center >= 10:  # tiny buckets are dominated by quantisation
                assert 0.5 * center <= row["mean_estimate"] <= 2.0 * center, (
                    method,
                    row,
                )
    # CSE cannot exceed its m ln m range: its largest mean estimate is capped.
    cse_cap = bench_config.virtual_size * math.log(bench_config.virtual_size)
    assert max(row["mean_estimate"] for row in buckets("CSE")) <= cse_cap * 1.1
