"""Ablation benchmark A3 — accuracy versus the shared memory budget.

Regenerates the memory sweep and asserts that (a) every sharing method
improves monotonically (within noise) as the budget grows and (b) the
proposed parameter-free methods stay ahead of the virtual-sketch baselines
at every budget.
"""

from __future__ import annotations

from collections import defaultdict

from repro.experiments import run_experiment


def test_ablation_memory_sweep(benchmark, bench_config, save_table):
    """Regenerate the memory-budget sweep and check the orderings."""
    multipliers = [0.5, 1.0, 2.0]
    table = benchmark.pedantic(
        run_experiment,
        args=("ablation_memory", bench_config),
        kwargs={"dataset": "chicago", "multipliers": multipliers},
        rounds=1,
        iterations=1,
    )
    save_table("ablation_memory", table)
    rows = table.row_dicts()

    by_method = defaultdict(list)
    for row in rows:
        by_method[row["method"]].append((row["memory_bits"], row["rse"]))

    for method, series in by_method.items():
        series.sort()
        # More memory should not make things dramatically worse.
        assert series[-1][1] <= series[0][1] * 1.5, (method, series)

    # At every budget the proposed methods beat the baselines.
    budgets = sorted({row["memory_bits"] for row in rows})
    for budget in budgets:
        at_budget = {row["method"]: row["rse"] for row in rows if row["memory_bits"] == budget}
        assert at_budget["FreeBS"] < at_budget["CSE"]
        assert at_budget["FreeBS"] < at_budget["vHLL"]
        assert at_budget["FreeRS"] < at_budget["vHLL"]
