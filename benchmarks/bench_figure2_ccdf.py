"""Benchmark / regeneration target for Figure 2 (CCDF of user cardinalities).

Regenerates the per-dataset CCDF series.  The assertion encodes the paper's
qualitative claim: every dataset's cardinality distribution is heavy tailed
(the CCDF still has mass two decades above the median cardinality).
"""

from __future__ import annotations

from repro.experiments import run_experiment


def test_figure2_ccdf(benchmark, bench_config, save_table):
    """Regenerate the Figure 2 CCDF series and persist them."""
    table = benchmark.pedantic(
        run_experiment, args=("figure2", bench_config), rounds=1, iterations=1
    )
    save_table("figure2_ccdf", table)
    rows = table.row_dicts()
    for dataset in bench_config.datasets:
        series = [row for row in rows if row["dataset"] == dataset]
        assert series, f"no CCDF series for {dataset}"
        # CCDF starts at 1 and is non-increasing.
        values = [row["ccdf"] for row in series]
        assert values[0] == 1.0
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))
        # Heavy tail: some users are at least 10x the smallest threshold with
        # non-negligible probability mass further out.
        assert values[-1] < 0.05
