"""Network monitoring scenario: detect super spreaders in real time.

This is the paper's motivating application (Section V-F): a traffic monitor
watches a stream of (source host, destination) pairs and must flag *super
spreaders* — hosts contacting an unusually large number of distinct
destinations, a signature of scanning and worm propagation — while the
stream is still flowing, not after the fact.

The example replays the "sanjose" dataset stand-in (a scaled synthetic
version of the CAIDA equinix-sanjose trace), runs a FreeRS-backed detector
in fully-online mode (the detection threshold is resolved from the sketch
itself, no ground truth needed), and reports precision/recall at a few
checkpoints against exact counting.

Run with::

    python examples/network_monitoring.py
"""

from __future__ import annotations

from repro import ExactCounter, FreeRS
from repro.detection import SuperSpreaderDetector, super_spreaders
from repro.streams import load_dataset

DELTA = 5e-3          # relative threshold: cardinality >= DELTA * total
CHECKPOINTS = 5       # progress reports while the stream flows
SCALE = 0.2           # dataset stand-in scale (keep the example snappy)


def main() -> None:
    stream = load_dataset("sanjose", scale=SCALE)
    pairs = stream.pairs()
    print(f"replaying {len(pairs)} pairs from the sanjose stand-in "
          f"({stream.user_count} hosts, {stream.total_cardinality} distinct pairs)")

    estimator = FreeRS(registers=(1 << 19) // 5)
    # Fully-online mode: the detector resolves the absolute threshold from the
    # estimator's own total-cardinality estimate.
    detector = SuperSpreaderDetector(estimator, delta=DELTA, use_exact_total=False)
    exact = ExactCounter()

    boundaries = [((index + 1) * len(pairs)) // CHECKPOINTS for index in range(CHECKPOINTS)]
    position = 0
    for checkpoint, boundary in enumerate(boundaries, start=1):
        while position < boundary:
            user, item = pairs[position]
            detector.update(user, item)
            exact.update(user, item)
            position += 1
        detected = detector.detect()
        truth = super_spreaders(
            exact.cardinalities(), DELTA, total_cardinality=exact.total_cardinality
        )
        missed = len(truth - detected)
        false_alarms = len(detected - truth)
        print(
            f"checkpoint {checkpoint}: {position} pairs, "
            f"threshold ~{detector.threshold():.0f} distinct destinations, "
            f"{len(truth)} true spreaders, {len(detected)} flagged, "
            f"{missed} missed, {false_alarms} false alarms"
        )

    print("\ntop flagged hosts (estimated distinct destinations):")
    for user, estimate in detector.top_users(5):
        print(f"  host {user}: ~{estimate:.0f} (exact {exact.cardinality(user)})")


if __name__ == "__main__":
    main()
