"""Social-graph scenario: track follower growth of accounts over time.

The paper's second family of datasets are social graphs (Twitter, Flickr,
Orkut, LiveJournal) where a "user cardinality" is the number of distinct
accounts a user interacts with.  This example replays the Twitter stand-in
and uses FreeBS to track, over time, the cardinality growth of the accounts
that end up the largest — the kind of anytime-available monitoring that the
offline baselines (CSE, vHLL) cannot provide because they would have to
re-scan their virtual sketches for every user at every step.

Run with::

    python examples/social_graph_tracking.py
"""

from __future__ import annotations

from repro import ExactCounter, FreeBS
from repro.streams import load_dataset

SCALE = 0.15
SNAPSHOTS = 6


def main() -> None:
    stream = load_dataset("Twitter", scale=SCALE)
    pairs = stream.pairs()
    exact_final = ExactCounter()
    for user, item in pairs:
        exact_final.update(user, item)
    # The five accounts with the largest final cardinality are the ones whose
    # growth we will track over time.
    tracked = [user for user, _ in sorted(
        exact_final.cardinalities().items(), key=lambda kv: kv[1], reverse=True
    )[:5]]
    print(f"tracking accounts {tracked} over {len(pairs)} interactions\n")

    estimator = FreeBS(memory_bits=1 << 20)
    exact = ExactCounter()
    boundary_step = max(1, len(pairs) // SNAPSHOTS)

    header = "pairs".rjust(10) + "".join(f"  acct {user}".rjust(16) for user in tracked)
    print(header)
    for position, (user, item) in enumerate(pairs, start=1):
        estimator.update(user, item)
        exact.update(user, item)
        if position % boundary_step == 0 or position == len(pairs):
            row = f"{position:>10}"
            for account in tracked:
                row += f"  {estimator.estimate(account):>7.0f}/{exact.cardinality(account):<6}"
            print(row)

    print("\nfinal estimates (estimated/exact) are anytime-available: every row above")
    print("was produced in O(1) per update without rescanning any sketch.")


if __name__ == "__main__":
    main()
