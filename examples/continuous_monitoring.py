"""Continuous monitoring scenario: windowed spreader alerts with recovery.

Where ``network_monitoring.py`` runs the paper's one-shot detector over the
whole stream, this example exercises the continuous subsystem
(:mod:`repro.monitor`): the stream is replayed through an epoch-rotating
windowed estimator, a spreader monitor emits threshold-crossing alerts with
hysteresis as the sliding window moves, and halfway through the replay the
monitor is "killed" and restored from a snapshot — continuing with identical
state, which is the operational story for a long-running monitor.

Run with::

    python examples/continuous_monitoring.py
"""

from __future__ import annotations

import tempfile

from repro.monitor import MonitorSpec, SnapshotStore
from repro.streams import assign_timestamps, load_dataset

SCALE = 0.2           # dataset stand-in scale (keep the example snappy)
EPOCH_SPAN = 2.0      # seconds of arrival clock per epoch
WINDOW_EPOCHS = 4     # sliding window covers the last 8 seconds
RATE = 2_000.0        # synthetic arrival rate, pairs per second
DELTA = 5e-3          # relative spreader threshold on the window total
BATCH = 2_000         # pairs handed to the monitor per observe() call


def main() -> None:
    stream = load_dataset("sanjose", scale=SCALE)
    pairs = stream.pairs()
    timestamps = assign_timestamps(pairs, rate=RATE, seed=1)
    print(
        f"replaying {len(pairs)} pairs over ~{timestamps[-1]:.1f}s of simulated "
        f"arrival time ({stream.user_count} hosts)"
    )

    spec = MonitorSpec(
        method="FreeRS",
        memory_bits=1 << 18,
        expected_users=stream.user_count,
        epoch_pairs=None,
        epoch_span=EPOCH_SPAN,
        window_epochs=WINDOW_EPOCHS,
        delta=DELTA,
        hysteresis=0.2,
    )
    monitor = spec.build()
    store = SnapshotStore(tempfile.mkdtemp(prefix="freesketch-snaps-"))

    half = (len(pairs) // (2 * BATCH)) * BATCH
    for start in range(0, half, BATCH):
        for alert in monitor.observe(
            pairs[start : start + BATCH], timestamps[start : start + BATCH]
        ):
            print(f"  [{alert.timestamp:8.2f}s] {alert.kind:5s} user {alert.user} "
                  f"(windowed estimate {alert.estimate:.0f})")
    path = store.save(monitor)
    print(f"-- killed at pair {half}; snapshot written to {path}")

    monitor = store.restore()
    print(f"-- restored; continuing from pair {monitor.window.pairs_ingested}")
    for start in range(half, len(pairs), BATCH):
        for alert in monitor.observe(
            pairs[start : start + BATCH], timestamps[start : start + BATCH]
        ):
            print(f"  [{alert.timestamp:8.2f}s] {alert.kind:5s} user {alert.user} "
                  f"(windowed estimate {alert.estimate:.0f})")

    print(f"\nepochs started: {monitor.window.epochs_started}, "
          f"alerts emitted: {monitor.alerts_emitted}")
    print("current top spreaders (sliding window):")
    for user, estimate in monitor.current_top[:5]:
        print(f"  user {user:>8}: ~{estimate:.0f} distinct destinations")


if __name__ == "__main__":
    main()
