"""Quickstart: estimate per-user cardinalities of a graph stream on the fly.

Builds a small synthetic bipartite stream (users visiting items, with
duplicates), feeds it to the two estimators proposed by the paper (FreeBS and
FreeRS), and compares a few users' estimates against exact counts.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ExactCounter, FreeBS, FreeRS
from repro.streams import zipf_bipartite_stream


def main() -> None:
    # A stream of 50k (user, item) pairs over 2,000 users with a heavy-tailed
    # cardinality distribution and ~30% duplicate pairs.
    pairs = zipf_bipartite_stream(
        n_users=2_000,
        n_pairs=50_000,
        alpha=1.3,
        max_cardinality=2_000,
        duplicate_factor=0.3,
        seed=42,
    )

    # FreeBS shares one bit array, FreeRS one register array, across all users.
    freebs = FreeBS(memory_bits=1 << 20)
    freers = FreeRS(registers=(1 << 20) // 5)
    exact = ExactCounter()

    for user, item in pairs:
        freebs.update(user, item)
        freers.update(user, item)
        exact.update(user, item)

    print(f"processed {exact.pairs_processed} pairs, "
          f"{exact.total_cardinality} distinct, {exact.user_count} users")
    print(f"FreeBS shared memory: {freebs.memory_bits() / 8 / 1024:.0f} KiB, "
          f"fill {freebs.fill_fraction:.1%}")
    print(f"FreeRS shared memory: {freers.memory_bits() / 8 / 1024:.0f} KiB")
    print()

    heaviest = sorted(exact.cardinalities().items(), key=lambda kv: kv[1], reverse=True)[:10]
    print(f"{'user':>8} {'exact':>8} {'FreeBS':>10} {'FreeRS':>10}")
    for user, true_cardinality in heaviest:
        print(
            f"{user:>8} {true_cardinality:>8} "
            f"{freebs.estimate(user):>10.1f} {freers.estimate(user):>10.1f}"
        )


if __name__ == "__main__":
    main()
