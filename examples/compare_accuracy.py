"""Compare all six estimators under the same memory budget.

Reproduces, on a single small workload, the core comparison of the paper's
evaluation: FreeBS, FreeRS, CSE, vHLL, per-user LPC and per-user HLL++ all
observe the same stream with the same shared memory budget, and are scored
by relative standard error, split into light and heavy users.

Run with::

    python examples/compare_accuracy.py
"""

from __future__ import annotations

from repro import ExactCounter
from repro.analysis import relative_standard_error
from repro.experiments.config import ExperimentConfig
from repro.experiments.estimators import METHOD_ORDER, build_estimators
from repro.streams import zipf_bipartite_stream


def main() -> None:
    config = ExperimentConfig(memory_bits=1 << 18, virtual_size=256)
    pairs = zipf_bipartite_stream(
        n_users=3_000,
        n_pairs=60_000,
        alpha=1.25,
        max_cardinality=3_000,
        duplicate_factor=0.4,
        seed=11,
    )
    exact = ExactCounter()
    for user, item in pairs:
        exact.update(user, item)
    truth = exact.cardinalities()
    estimators = build_estimators(config, expected_users=exact.user_count)

    print(f"{len(pairs)} pairs, {exact.total_cardinality} distinct, "
          f"{exact.user_count} users, shared budget {config.memory_bits // 8 // 1024} KiB\n")

    for user, item in pairs:
        for estimator in estimators.values():
            estimator.update(user, item)

    split = 100
    light = {user: n for user, n in truth.items() if n < split}
    heavy = {user: n for user, n in truth.items() if n >= split}
    print(f"{'method':>8} {'RSE (all)':>12} {'RSE (n<100)':>12} {'RSE (n>=100)':>13}")
    for method in METHOD_ORDER:
        estimates = estimators[method].estimates()
        print(
            f"{method:>8} "
            f"{relative_standard_error(truth, estimates):>12.4f} "
            f"{relative_standard_error(light, estimates):>12.4f} "
            f"{relative_standard_error(heavy, estimates):>13.4f}"
        )
    print("\nExpected shape (paper Figure 5): FreeBS/FreeRS lowest everywhere;")
    print("CSE blows up on heavy users (m ln m range limit); vHLL worst on light users.")


if __name__ == "__main__":
    main()
