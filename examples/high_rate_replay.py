"""High-rate replay: the vectorised batch path plus checkpointing.

Two production concerns the scalar streaming API does not cover:

* replaying a large recorded trace quickly (the pure-Python per-pair loop is
  the bottleneck, not the sketch math) — solved by the exact-equivalent
  vectorised batch estimators in ``repro.core.batch``;
* surviving a monitor restart — solved by the snapshot serialisation in
  ``repro.core.serialization``.

This example generates a 200k-pair trace, replays it in batches with
``FreeRSBatch`` while checkpointing after every batch, then "crashes",
restores the latest checkpoint and finishes the replay, verifying that the
result is identical to an uninterrupted run.

Run with::

    python examples/high_rate_replay.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import FreeRSBatch, encode_int_pairs
from repro.core import serialization

REGISTERS = (1 << 20) // 5
PAIR_COUNT = 200_000
BATCH_SIZE = 50_000


def make_trace(count: int, seed: int = 7):
    rng = np.random.default_rng(seed)
    users = rng.zipf(1.4, size=count) % 5_000
    items = rng.integers(0, 50_000, size=count)
    return users.astype(np.int64), items.astype(np.int64)


def main() -> None:
    users, items = make_trace(PAIR_COUNT)
    checkpoint_dir = Path(tempfile.mkdtemp(prefix="freesketch-"))

    # --- uninterrupted replay (reference) ---------------------------------
    reference = FreeRSBatch(REGISTERS, seed=1)
    start = time.perf_counter()
    reference.update_batch_encoded(*encode_int_pairs(users, items))
    elapsed = time.perf_counter() - start
    print(f"replayed {PAIR_COUNT} pairs in {elapsed:.2f}s "
          f"({PAIR_COUNT / elapsed / 1e6:.2f}M pairs/s) with the batch path")

    # --- replay with checkpoints, interrupted half way ---------------------
    monitor = FreeRSBatch(REGISTERS, seed=1)
    checkpoint = checkpoint_dir / "monitor.json"
    crash_after = PAIR_COUNT // 2
    for start_index in range(0, crash_after, BATCH_SIZE):
        stop = min(start_index + BATCH_SIZE, crash_after)
        monitor.update_batch_encoded(*encode_int_pairs(users[start_index:stop], items[start_index:stop]))
        serialization.save(monitor, checkpoint)
    print(f"'crash' after {crash_after} pairs; checkpoint at {checkpoint}")

    restored = serialization.load(checkpoint)
    for start_index in range(crash_after, PAIR_COUNT, BATCH_SIZE):
        stop = min(start_index + BATCH_SIZE, PAIR_COUNT)
        restored.update_batch_encoded(*encode_int_pairs(users[start_index:stop], items[start_index:stop]))

    # --- verify the restored run matches the uninterrupted one -------------
    reference_estimates = reference.estimates()
    restored_estimates = restored.estimates()
    max_diff = max(
        abs(reference_estimates[user] - restored_estimates.get(user, 0.0))
        for user in reference_estimates
    )
    print(f"restored-run vs uninterrupted-run max estimate difference: {max_diff:.3g}")
    heavy = sorted(restored_estimates.items(), key=lambda kv: kv[1], reverse=True)[:5]
    print("top estimated users after restore:", [(int(u), round(v)) for u, v in heavy])


if __name__ == "__main__":
    main()
